//! The simulated fabric: LogGP-parameterised timing on the virtual clock.
//!
//! Cost composition for a posted WR of `k` bytes on QP `q` of node `s`
//! destined to node `d`:
//!
//! 1. **Doorbell** — the WQE becomes NIC-visible at
//!    `max(now, opts.earliest) + o_s`;
//! 2. **NIC WQE processing** — a per-node serial resource models the
//!    PCIe/doorbell path shared by *all* QPs of the node: each WQE occupies
//!    it for `wqe_overhead + packets * pkt_overhead` (MTU segmentation);
//! 3. **QP DMA engine** — a per-QP serial resource paces the payload at
//!    `G / qp_bw_fraction` ns/byte: a single QP cannot saturate the link,
//!    which is why large messages benefit from spreading over multiple QPs
//!    (paper Fig. 7);
//! 4. **Egress/ingress links** — per-node serial resources at the full link
//!    rate `G` ns/byte, shared across QPs (aggregate bandwidth cap);
//! 5. **Latency** — delivery happens `L + opts.extra_wire_latency` after the
//!    wire is traversed; the receive completion is visible `o_r` later;
//! 6. **Ack** — the send completion is visible `L` after delivery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use partix_model::LogGpParams;
use partix_sim::{Scheduler, SerialResource, SimDuration};
use partix_telemetry::{segments_for, SpanLog};

use crate::fabric::{
    complete_send, execute_delivery_ext, outcome_status, sender_retry_profile, DeliveryOutcome,
    Fabric, TransferJob,
};
use crate::network::NetworkState;
use crate::types::NodeId;

/// Timing parameters of the simulated fabric.
#[derive(Clone, Copy, Debug)]
pub struct FabricParams {
    /// Verbs-level LogGP parameters (`l`, `o_s`, `o_r`, `big_g` used; `g` is
    /// unused — per-message costs are explicit below).
    pub loggp: LogGpParams,
    /// Fraction of link bandwidth a single QP's DMA engine can drive.
    pub qp_bw_fraction: f64,
    /// Per-WQE NIC processing cost (ns) on the shared doorbell/PCIe path.
    pub wqe_overhead_ns: u64,
    /// Additional NIC processing per MTU packet (ns).
    pub pkt_overhead_ns: u64,
    /// Maximum transmission unit (bytes); the paper's tuning used 4 KiB.
    pub mtu: usize,
    /// Whether delivery really copies bytes between regions. Timing-only
    /// studies over many-gigabyte parameter sweeps turn this off; all
    /// completion/WR accounting is unaffected.
    pub copy_data: bool,
    /// Per-WQE NIC cost when the post uses the small-message fast lane
    /// (inline/BlueFlame: no WQE DMA fetch).
    pub inline_wqe_overhead_ns: u64,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            loggp: LogGpParams::niagara_verbs(),
            qp_bw_fraction: 0.6,
            wqe_overhead_ns: 450,
            pkt_overhead_ns: 10,
            mtu: 4096,
            copy_data: true,
            inline_wqe_overhead_ns: 100,
        }
    }
}

impl FabricParams {
    /// ns/byte on the shared link.
    pub fn link_g(&self) -> f64 {
        self.loggp.big_g
    }

    /// ns/byte through a single QP engine.
    pub fn qp_g(&self) -> f64 {
        self.loggp.big_g / self.qp_bw_fraction
    }

    /// Theoretical single-QP point-to-point bandwidth (bytes/sec) — the
    /// "hardware limit" line of the paper's perceived-bandwidth figures.
    pub fn single_qp_bandwidth(&self) -> f64 {
        1e9 / self.qp_g()
    }

    /// Link bandwidth (bytes/sec).
    pub fn link_bandwidth(&self) -> f64 {
        1e9 / self.link_g()
    }
}

#[derive(Default)]
struct FabricStats {
    transfers: AtomicU64,
    bytes: AtomicU64,
}

/// One modelled hardware resource plus its precomputed trace identity. The
/// name is formatted exactly once, when the resource is first created;
/// attaching it to a span log afterwards is a refcount bump.
struct ResourceEntry {
    res: Arc<SerialResource>,
    name: Arc<str>,
    pid: u32,
    tid: u32,
}

/// Discrete-event fabric.
pub struct SimFabric {
    sched: Scheduler,
    params: FabricParams,
    nic: Mutex<HashMap<NodeId, ResourceEntry>>,
    engines: Mutex<HashMap<(NodeId, u32), ResourceEntry>>,
    egress: Mutex<HashMap<NodeId, ResourceEntry>>,
    ingress: Mutex<HashMap<NodeId, ResourceEntry>>,
    stats: FabricStats,
    /// Destination for resource busy spans once tracing is enabled; `None`
    /// keeps the hot path span-free.
    span_log: Mutex<Option<Arc<SpanLog>>>,
}

/// Trace-viewer thread lanes for the per-node resources; QP engines use
/// `ENGINE_TID_BASE + qp_num`.
const NIC_TID: u32 = 0;
const EGRESS_TID: u32 = 1;
const INGRESS_TID: u32 = 2;
const ENGINE_TID_BASE: u32 = 8;

fn get_or_insert<K: std::hash::Hash + Eq + Copy>(
    map: &Mutex<HashMap<K, ResourceEntry>>,
    key: K,
    span_log: &Mutex<Option<Arc<SpanLog>>>,
    mk_span: impl FnOnce() -> (String, u32, u32),
) -> Arc<SerialResource> {
    let mut m = map.lock();
    if let Some(e) = m.get(&key) {
        return e.res.clone();
    }
    // First use of this resource: format its trace name once and, if tracing
    // is already on, attach the span sink now so lazily-created resources
    // are not invisible in the trace.
    let res = Arc::new(SerialResource::new());
    let (name, pid, tid) = mk_span();
    let name: Arc<str> = name.into();
    if let Some(log) = span_log.lock().clone() {
        res.attach_span_log(log, name.clone(), pid, tid);
    }
    m.insert(
        key,
        ResourceEntry {
            res: res.clone(),
            name,
            pid,
            tid,
        },
    );
    res
}

impl SimFabric {
    /// Create a simulated fabric driven by `sched`.
    pub fn new(sched: Scheduler, params: FabricParams) -> Arc<Self> {
        Arc::new(SimFabric {
            sched,
            params,
            nic: Mutex::new(HashMap::new()),
            engines: Mutex::new(HashMap::new()),
            egress: Mutex::new(HashMap::new()),
            ingress: Mutex::new(HashMap::new()),
            stats: FabricStats::default(),
            span_log: Mutex::new(None),
        })
    }

    /// Enable span tracing: every modelled hardware resource records its
    /// busy intervals into `log` from now on (existing resources are
    /// attached immediately, later-created ones at first use). Names were
    /// precomputed at resource creation, so each attachment is a refcount
    /// bump, not a `format!`.
    pub fn trace_into(&self, log: Arc<SpanLog>) {
        *self.span_log.lock() = Some(log.clone());
        let attach = |e: &ResourceEntry| {
            e.res
                .attach_span_log(log.clone(), e.name.clone(), e.pid, e.tid);
        };
        self.nic.lock().values().for_each(attach);
        self.egress.lock().values().for_each(attach);
        self.ingress.lock().values().for_each(attach);
        self.engines.lock().values().for_each(attach);
    }

    /// The parameters in force.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The scheduler driving this fabric.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Transfers executed so far.
    pub fn total_transfers(&self) -> u64 {
        self.stats.transfers.load(Ordering::Relaxed)
    }

    /// Bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    /// Busy-time accounting for every modelled hardware resource, for
    /// utilisation reporting: `(name, busy_ns, reservations)` per resource.
    /// Busy fractions follow by dividing by the observation window.
    pub fn utilization(&self) -> Vec<ResourceUtilization> {
        let mut out = Vec::new();
        let mut collect = |e: &ResourceEntry| {
            out.push(ResourceUtilization {
                name: e.name.to_string(),
                busy_ns: e.res.busy_total().as_nanos(),
                reservations: e.res.reservations(),
            });
        };
        self.nic.lock().values().for_each(&mut collect);
        self.egress.lock().values().for_each(&mut collect);
        self.ingress.lock().values().for_each(&mut collect);
        self.engines.lock().values().for_each(&mut collect);
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Busy-time snapshot of one modelled resource.
#[derive(Clone, Debug)]
pub struct ResourceUtilization {
    /// Resource identity (`nic[node N]`, `egress[node N]`,
    /// `qp_engine[node N, qp Q]`, ...).
    pub name: String,
    /// Total occupied virtual time (ns).
    pub busy_ns: u64,
    /// Number of transfers that reserved the resource.
    pub reservations: u64,
}

impl Fabric for SimFabric {
    fn submit(&self, net: &Arc<NetworkState>, job: TransferJob) {
        let p = &self.params;
        let bytes = job.total_len as u64;
        let now = self.sched.now();
        let sw_ready = job.opts.earliest.unwrap_or(now).max(now);
        let doorbell = sw_ready + SimDuration::from_nanos_f64(p.loggp.o_s);

        let wire_counters = &net.telemetry().wire;
        wire_counters.inner_submissions.inc();

        // Per-node WQE processing path (shared by all QPs of the node).
        let packets = segments_for(bytes, p.mtu);
        wire_counters.mtu_segments.add(packets);
        let src_node = job.src_node;
        let nic = get_or_insert(&self.nic, job.src_node, &self.span_log, || {
            (format!("nic[node {src_node}]"), src_node, NIC_TID)
        });
        let wqe = if job.opts.small_lane {
            p.inline_wqe_overhead_ns
        } else {
            p.wqe_overhead_ns + packets * p.pkt_overhead_ns
        };
        let nic_cost = SimDuration::from_nanos(wqe);
        let (_, nic_done) = nic.reserve(doorbell, nic_cost);

        // Per-QP DMA engine pacing the payload.
        let src_qp = job.src_qp;
        let engine = get_or_insert(
            &self.engines,
            (job.src_node, job.src_qp),
            &self.span_log,
            || {
                (
                    format!("qp_engine[node {src_node}, qp {src_qp}]"),
                    src_node,
                    ENGINE_TID_BASE + src_qp,
                )
            },
        );
        let engine_cost = SimDuration::from_nanos_f64(bytes as f64 * p.qp_g());
        let (_, engine_done) = engine.reserve(nic_done, engine_cost);

        // Shared link occupancy at full rate (egress then ingress).
        let wire_cost = SimDuration::from_nanos_f64(bytes as f64 * p.link_g());
        let egress = get_or_insert(&self.egress, job.src_node, &self.span_log, || {
            (format!("egress[node {src_node}]"), src_node, EGRESS_TID)
        });
        let (_, egress_done) = egress.reserve(nic_done, wire_cost);
        let dst_node = job.dst_node;

        self.stats.transfers.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);

        let latency = SimDuration::from_nanos_f64(p.loggp.l) + job.opts.extra_wire_latency;
        let o_r = SimDuration::from_nanos_f64(p.loggp.o_r);
        let ack_latency = SimDuration::from_nanos_f64(p.loggp.l);
        let copy_data = p.copy_data;

        if self.sched.is_sharded() {
            // Sharded delivery is split in two so that every resource is
            // touched only by events on its owning node's shard. The
            // source-side event reserves nic/engine/egress (above) and sends
            // a cross-shard arrival at `head_arrive = src wire end + wire
            // latency` (>= now + L, so the lookahead always holds); the
            // arrival event on the receiver's shard reserves its ingress
            // port — in deterministic receiver event order — and finishes
            // the identical arithmetic: `delivered = max(engine, egress,
            // ingress done) + latency = max(head_arrive, ingress_done +
            // latency)`.
            let head_arrive = engine_done.max(egress_done) + latency;
            let ingress = get_or_insert(&self.ingress, job.dst_node, &self.span_log, || {
                (format!("ingress[node {dst_node}]"), dst_node, INGRESS_TID)
            });
            let net = net.clone();
            let sched = self.sched.clone();
            self.sched.at_node(dst_node, head_arrive, move || {
                let (_, ingress_done) = ingress.reserve(nic_done, wire_cost);
                let delivered = head_arrive.max(ingress_done + latency);
                record_wire_span(&net, &job, doorbell, delivered);
                let recv_visible = delivered + o_r;
                let ack = delivered + ack_latency;
                let sched2 = sched.clone();
                sched.at_node(dst_node, recv_visible, move || {
                    deliver_with_rnr_retry(&sched2, &net, job, copy_data, ack, ack_latency, 0);
                });
            });
            return;
        }

        let ingress = get_or_insert(&self.ingress, job.dst_node, &self.span_log, || {
            (format!("ingress[node {dst_node}]"), dst_node, INGRESS_TID)
        });
        let (_, ingress_done) = ingress.reserve(nic_done, wire_cost);

        let wire_end = engine_done.max(egress_done).max(ingress_done);
        let delivered = wire_end + latency;
        let recv_visible = delivered + SimDuration::from_nanos_f64(p.loggp.o_r);
        let ack = delivered + SimDuration::from_nanos_f64(p.loggp.l);

        // Flow tracing: both the doorbell instant and the delivery instant
        // fall out of the reservation arithmetic above, so the wire-time
        // sample is recorded passively here — no extra scheduler events,
        // keeping traced runs byte-identical to untraced ones.
        record_wire_span(net, &job, doorbell, delivered);

        // Delivery event: move the data, push the receive completion, then
        // schedule the send-side ack. Receiver-not-ready re-arms the
        // delivery after the RNR timer instead of failing outright.
        let net = net.clone();
        let sched = self.sched.clone();
        // Delivery executes on the receiver: route with destination-node
        // affinity so a sharded executor can home it correctly.
        self.sched.at_node(dst_node, recv_visible, move || {
            deliver_with_rnr_retry(&sched, &net, job, copy_data, ack, ack_latency, 0);
        });
    }
}

/// Record the passive wire-stage flow sample for `job`: doorbell instant,
/// wire residency up to `delivered`.
fn record_wire_span(
    net: &Arc<NetworkState>,
    job: &TransferJob,
    doorbell: partix_sim::SimTime,
    delivered: partix_sim::SimTime,
) {
    let flows = &net.telemetry().flows;
    let wire_ns = delivered.saturating_since(doorbell).as_nanos();
    flows.event_at(
        job.flow,
        partix_telemetry::FlowStage::WireSubmit,
        doorbell.as_nanos(),
        job.src_qp,
        0,
        wire_ns,
    );
    if job.flow != 0 {
        flows.stage_ns(|s| &s.wire, wire_ns);
    }
}

/// Execute a delivery on the virtual clock, waiting out the RNR NAK timer
/// and re-attempting up to the sender's `rnr_retry` budget before the
/// `RnrRetryExceeded` completion is allowed to surface. `ack_at` is the
/// absolute time the send-side ack of *this* attempt becomes visible; a
/// re-attempt pays a fresh ack latency from its own delivery time.
fn deliver_with_rnr_retry(
    sched: &Scheduler,
    net: &Arc<NetworkState>,
    job: TransferJob,
    copy_data: bool,
    ack_at: partix_sim::SimTime,
    ack_latency: SimDuration,
    attempt: u8,
) {
    let outcome = execute_delivery_ext(net, &job, copy_data);
    if matches!(outcome, DeliveryOutcome::ReceiverNotReady) {
        if let Some(profile) = sender_retry_profile(net, &job) {
            if attempt < profile.rnr_retry {
                net.telemetry().wire.rnr_requeues.inc();
                let wait = SimDuration::from_nanos(profile.min_rnr_timer_ns.max(1));
                let flows = &net.telemetry().flows;
                flows.event_at(
                    job.flow,
                    partix_telemetry::FlowStage::RnrWait,
                    sched.now().as_nanos(),
                    job.src_qp,
                    0,
                    wait.as_nanos(),
                );
                if job.flow != 0 {
                    flows.stage_ns(|s| &s.rnr_wait, wait.as_nanos());
                }
                let sched2 = sched.clone();
                let net2 = net.clone();
                let dst_node = job.dst_node;
                sched.at_node(dst_node, sched.now() + wait, move || {
                    let ack_at = sched2.now() + ack_latency;
                    deliver_with_rnr_retry(
                        &sched2,
                        &net2,
                        job,
                        copy_data,
                        ack_at,
                        ack_latency,
                        attempt + 1,
                    );
                });
                return;
            }
        }
    }
    let status = outcome_status(&outcome);
    let at = if sched.is_sharded() {
        // The delivery event runs at `delivered + o_r`, which is *after*
        // `ack_at = delivered + L` was computed; crossing back to the
        // sender's shard needs the full wire latency from the current
        // instant, so the ack pays at least `now + L`. (Virtual-time only;
        // identical on every sharded executor and job count.)
        ack_at.max(sched.now() + ack_latency)
    } else {
        ack_at.max(sched.now())
    };
    let net = net.clone();
    // The completion lands in the sender's CQ: source-node affinity.
    let src_node = job.src_node;
    sched.at_node(src_node, at, move || {
        complete_send(&net, &job, status);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_tracks_traffic() {
        use crate::network::{connect_pair, Network};
        use crate::qp::QpCaps;
        use crate::types::{Opcode, RecvWr, SendWr, Sge};
        let sched = Scheduler::new();
        let fabric = SimFabric::new(sched.clone(), FabricParams::default());
        let net = Network::new(2, fabric.clone());
        let a = net.open(0).unwrap();
        let b = net.open(1).unwrap();
        let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
        let (cqa, cqb) = (a.create_cq(), b.create_cq());
        let qa = a
            .create_qp(pda, cqa, a.create_cq(), QpCaps::default())
            .unwrap();
        let qb = b
            .create_qp(pdb, b.create_cq(), cqb, QpCaps::default())
            .unwrap();
        connect_pair(&qa, &qb).unwrap();
        let src = a.reg_mr(pda, 1 << 20).unwrap();
        let dst = b.reg_mr(pdb, 1 << 20).unwrap();
        qb.post_recv(RecvWr::bare(0)).unwrap();
        qa.post_send(SendWr {
            wr_id: 0,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: 1 << 20,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: Some(0),
            inline_data: false,
            flow: 0,
        })
        .unwrap();
        sched.run();
        let util = fabric.utilization();
        // One egress (node 0), one ingress (node 1), one NIC, one engine.
        assert!(util
            .iter()
            .any(|u| u.name == "egress[node 0]" && u.reservations == 1));
        assert!(util
            .iter()
            .any(|u| u.name == "ingress[node 1]" && u.reservations == 1));
        let egress = util.iter().find(|u| u.name == "egress[node 0]").unwrap();
        // 1 MiB at the link rate: ~91 us busy.
        let expect = (1u64 << 20) as f64 * FabricParams::default().link_g();
        assert!((egress.busy_ns as f64 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn default_params_sane() {
        let p = FabricParams::default();
        assert!(p.qp_g() > p.link_g());
        assert!(p.single_qp_bandwidth() < p.link_bandwidth());
        // EDR-class link.
        assert!(p.link_bandwidth() > 10e9 && p.link_bandwidth() < 15e9);
    }
}
