//! The fabric abstraction and the shared data-movement engine.
//!
//! A [`Fabric`] decides *when* a posted transfer's side effects occur. Two
//! implementations exist:
//!
//! - [`InstantFabric`](crate::InstantFabric) — everything happens inside
//!   `post_send` (functional mode for examples/tests on real threads);
//! - [`SimFabric`](crate::SimFabric) — effects are scheduled on the virtual
//!   clock according to a LogGP-parameterised cost model.
//!
//! Both share [`execute_delivery`], which really moves the bytes and
//! produces the completions, so data-integrity behaviour is identical.

use std::sync::Arc;

use partix_sim::{SimDuration, SimTime};

use crate::buf::{InlineVec, PooledBuf};
use crate::memory::MemoryRegion;
use crate::network::NetworkState;
use crate::types::{NodeId, Opcode, WcOpcode, WcStatus, WorkCompletion};

/// A gather segment resolved against local registrations at post time.
#[derive(Clone)]
pub struct ResolvedSegment {
    /// Source region.
    pub mr: MemoryRegion,
    /// Offset within the region.
    pub offset: usize,
    /// Byte length.
    pub len: usize,
}

/// Software-path timing options a caller can attach to a post. These model
/// costs *above* the verbs layer (protocol copies, lock waits, matching) —
/// the instant fabric ignores them.
#[derive(Clone, Copy, Debug, Default)]
pub struct PostOptions {
    /// Earliest virtual time the NIC may start processing the WQE (the end
    /// of the software path that produced it). `None` means "now".
    pub earliest: Option<SimTime>,
    /// Extra one-way wire latency (e.g. a rendezvous RTS/CTS handshake).
    pub extra_wire_latency: SimDuration,
    /// Small-message fast lane: the payload rides the doorbell write
    /// (inlining / BlueFlame), skipping the WQE DMA fetch. UCX uses this for
    /// small eager messages; the paper's module deliberately does not
    /// (§IV-A), which is why its aggregators lose below ~2 KiB.
    pub small_lane: bool,
}

/// Everything the fabric needs to carry out one posted send WR. Cloneable
/// so reliability decorators can retransmit or duplicate a transfer.
#[derive(Clone)]
pub struct TransferJob {
    /// Originating node.
    pub src_node: NodeId,
    /// Destination node.
    pub dst_node: NodeId,
    /// Originating QP number.
    pub src_qp: u32,
    /// Destination QP number.
    pub dst_qp: u32,
    /// Caller's WR id.
    pub wr_id: u64,
    /// Operation.
    pub opcode: Opcode,
    /// Resolved gather list. Inline up to four segments: partitioned
    /// aggregation posts one or two SGEs per WR, so the common case carries
    /// no heap allocation inside the job.
    pub segments: InlineVec<ResolvedSegment>,
    /// Remote NIC-visible destination address.
    pub remote_addr: u64,
    /// Remote key.
    pub rkey: u32,
    /// Immediate data.
    pub imm: Option<u32>,
    /// Total bytes.
    pub total_len: u32,
    /// Payload snapshot taken at post time for inline sends (`None` for
    /// ordinary gather-at-delivery transfers). Pooled and refcounted:
    /// cloning the job for a retransmission or ghost duplicate shares the
    /// same slot buffer, and the storage returns to the arena only when the
    /// last clone drops.
    pub inline_payload: Option<PooledBuf>,
    /// Packet sequence number assigned by the source QP at post time.
    /// Retransmissions and injected duplicates of the same WR share one
    /// PSN, which is what lets the destination suppress re-deliveries.
    pub psn: u64,
    /// A spurious wire-level duplicate injected by a lossy decorator: it may
    /// deliver payload (subject to the PSN check) but must never produce a
    /// send-side completion or touch the sender's outstanding-WR slot.
    pub ghost: bool,
    /// Causal-trace flow identifier copied from the posting WR (0 =
    /// untraced). Clones — retransmissions, ghost duplicates — keep it, so
    /// every wire attempt of a message traces back to one flow.
    pub flow: u64,
    /// Software-path timing options.
    pub opts: PostOptions,
}

/// Moves bytes for posted work requests and delivers completions.
pub trait Fabric: Send + Sync {
    /// Accept a validated transfer job. Implementations must eventually:
    /// move the bytes, push the receive-side completion (for
    /// write-with-immediate), push the send-side completion, and release the
    /// sender's outstanding-WR slot.
    fn submit(&self, net: &Arc<NetworkState>, job: TransferJob);
}

/// Outcome of executing a delivery.
pub enum DeliveryOutcome {
    /// Data landed; for write-with-immediate the receive completion was
    /// pushed to the destination's recv CQ.
    Delivered {
        /// Bytes written.
        bytes: u32,
    },
    /// The remote rkey/address check failed; nothing was written.
    RemoteAccessError,
    /// No receive WR was posted on the destination QP (write-with-imm).
    ReceiverNotReady,
    /// A two-sided payload did not fit the receive WR's scatter space.
    PayloadTooLarge,
    /// The destination had already applied this `(src_qp, psn)`: a
    /// retransmission or injected duplicate arrived after the original
    /// landed. Nothing was consumed or written; the sender still sees
    /// success (the data *is* there).
    Duplicate,
}

/// Execute the destination-side effects of `job`: validate the remote
/// address, copy the bytes, and (for write-with-immediate) consume a receive
/// WR and push the receive completion. Returns what happened so the fabric
/// can construct the matching send-side completion.
pub fn execute_delivery(net: &Arc<NetworkState>, job: &TransferJob) -> DeliveryOutcome {
    execute_delivery_ext(net, job, true)
}

/// [`execute_delivery`] with an explicit data-movement switch. Timing
/// studies over many-gigabyte sweeps disable the byte copies (`copy_data =
/// false`) — all validation, receive-WR accounting and completions still
/// happen, so control-flow behaviour is identical.
pub fn execute_delivery_ext(
    net: &Arc<NetworkState>,
    job: &TransferJob,
    copy_data: bool,
) -> DeliveryOutcome {
    // Telemetry: the attempt is counted before any validation so that the
    // outcome buckets below always partition the attempts exactly — the
    // "outcome partition" invariant. Every return path of `deliver` maps to
    // precisely one bucket.
    let wire = &net.telemetry().wire;
    wire.delivery_attempts.inc();
    let outcome = deliver(net, job, copy_data);
    match &outcome {
        DeliveryOutcome::Delivered { bytes } => {
            wire.delivered.inc();
            wire.bytes_delivered.add(*bytes as u64);
            if job.ghost {
                wire.delivered_ghost.inc();
            }
            net.telemetry().flows.event(
                job.flow,
                partix_telemetry::FlowStage::Delivered,
                job.src_qp,
                0,
                *bytes as u64,
            );
            // Every opcode except a bare RDMA write pushes a receive CQE on
            // delivery; mirrored against the CQ-side `recv_pushed` count.
            if job.opcode != Opcode::RdmaWrite {
                wire.recv_cqes.inc();
            }
        }
        DeliveryOutcome::Duplicate => wire.duplicates_suppressed.inc(),
        DeliveryOutcome::RemoteAccessError => wire.remote_errors.inc(),
        DeliveryOutcome::ReceiverNotReady => wire.receiver_not_ready.inc(),
        DeliveryOutcome::PayloadTooLarge => wire.length_errors.inc(),
    }
    outcome
}

fn deliver(net: &Arc<NetworkState>, job: &TransferJob, copy_data: bool) -> DeliveryOutcome {
    let Ok(dst_node) = net.node(job.dst_node) else {
        return DeliveryOutcome::RemoteAccessError;
    };
    let Ok(dst_qp) = dst_node.qp(job.dst_qp) else {
        return DeliveryOutcome::RemoteAccessError;
    };
    // PSN suppression: a retransmission or duplicate of an already-applied
    // transfer is dropped *before* it can consume a receive WR or write
    // memory, turning at-least-once wire behaviour into exactly-once at the
    // memory region. The PSN is recorded only on successful delivery, so an
    // RNR-deferred attempt is never mistaken for a duplicate.
    if dst_qp.psn_seen(job.src_qp, job.psn) {
        return DeliveryOutcome::Duplicate;
    }
    let two_sided = matches!(job.opcode, Opcode::Send | Opcode::SendWithImm);

    if two_sided {
        // Two-sided: the receive WR *is* the destination.
        let Some(recv_wr) = dst_qp.take_recv() else {
            return DeliveryOutcome::ReceiverNotReady;
        };
        let recv_space: u64 = recv_wr.sg_list.iter().map(|s| s.length as u64).sum();
        if (job.total_len as u64) > recv_space {
            return DeliveryOutcome::PayloadTooLarge;
        }
        if copy_data {
            // Stream the gathered payload into the receive WR's scatter
            // elements with chunked MR→MR copies: each chunk spans as far
            // as both the current source piece and the current destination
            // element allow, moving bytes source-region→destination-region
            // with a single copy and no intermediate buffer. Inline sends
            // stream from their post-time snapshot instead of the (possibly
            // since-rewritten) source region.
            enum Piece<'a> {
                Bytes(&'a [u8]),
                Region(&'a MemoryRegion, usize, usize),
            }
            let inline = job.inline_payload.is_some();
            let pieces = job.inline_payload.iter().map(|p| Piece::Bytes(p)).chain(
                job.segments
                    .iter()
                    .filter(move |_| !inline)
                    .map(|s| Piece::Region(&s.mr, s.offset, s.len)),
            );
            let mut sge_iter = recv_wr.sg_list.iter();
            // Current destination window: (region, cursor, bytes left).
            let mut dst: Option<(MemoryRegion, usize, usize)> = None;
            'outer: for piece in pieces {
                let slen = match &piece {
                    Piece::Bytes(b) => b.len(),
                    Piece::Region(_, _, len) => *len,
                };
                let mut spos = 0usize;
                while spos < slen {
                    if dst.as_ref().is_none_or(|w| w.2 == 0) {
                        let Some(sge) = sge_iter.next() else {
                            break 'outer;
                        };
                        let Ok(mr) = dst_node.mrs.by_lkey(sge.lkey) else {
                            return DeliveryOutcome::RemoteAccessError;
                        };
                        let Ok(base) = mr.offset_of(sge.lkey, sge.addr, sge.length as u64) else {
                            return DeliveryOutcome::RemoteAccessError;
                        };
                        dst = Some((mr, base, sge.length as usize));
                        continue; // re-check: the new element may be empty
                    }
                    let w = dst.as_mut().expect("window installed above");
                    let n = w.2.min(slen - spos);
                    match &piece {
                        Piece::Bytes(b) => {
                            w.0.write(w.1, &b[spos..spos + n]).expect("validated above")
                        }
                        Piece::Region(mr, off, _) => {
                            w.0.copy_from(w.1, mr, off + spos, n)
                                .expect("validated at post and above")
                        }
                    }
                    w.1 += n;
                    w.2 -= n;
                    spos += n;
                }
            }
        }
        dst_qp.mark_psn(job.src_qp, job.psn);
        dst_qp.recv_cq().push(WorkCompletion {
            wr_id: recv_wr.wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Recv,
            byte_len: job.total_len,
            imm: job.imm,
            qp_num: dst_qp.qp_num(),
            flow: job.flow,
            pushed_ns: net.telemetry().flows.now(),
        });
        return DeliveryOutcome::Delivered {
            bytes: job.total_len,
        };
    }

    // One-sided: validate the remote address *before* consuming a receive
    // WR, so a protection failure leaves the receive queue untouched.
    let Ok((dst_mr, base_off)) =
        dst_node
            .mrs
            .resolve_remote(job.rkey, job.remote_addr, job.total_len as u64)
    else {
        return DeliveryOutcome::RemoteAccessError;
    };
    let recv_slot = if job.opcode == Opcode::RdmaWriteWithImm {
        match dst_qp.take_recv() {
            Some(r) => Some(r),
            None => return DeliveryOutcome::ReceiverNotReady,
        }
    } else {
        None
    };

    // Gather: copy each local segment (or the inline snapshot) into the
    // contiguous remote range.
    if copy_data {
        if let Some(payload) = &job.inline_payload {
            dst_mr
                .write(base_off, payload)
                .expect("range validated at resolve time");
        } else {
            let mut cursor = base_off;
            for seg in job.segments.iter() {
                dst_mr
                    .copy_from(cursor, &seg.mr, seg.offset, seg.len)
                    .expect("ranges validated at post and resolve time");
                cursor += seg.len;
            }
        }
    } else {
        let _ = (dst_mr, base_off);
    }

    dst_qp.mark_psn(job.src_qp, job.psn);
    if let Some(recv_wr) = recv_slot {
        dst_qp.recv_cq().push(WorkCompletion {
            wr_id: recv_wr.wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::RecvRdmaWithImm,
            byte_len: job.total_len,
            imm: job.imm,
            qp_num: dst_qp.qp_num(),
            flow: job.flow,
            pushed_ns: net.telemetry().flows.now(),
        });
    }
    DeliveryOutcome::Delivered {
        bytes: job.total_len,
    }
}

/// Push the send-side completion for `job` with `status`, releasing the
/// outstanding-WR slot; drives the source QP to the error state on failure
/// (as real hardware does).
pub fn complete_send(net: &Arc<NetworkState>, job: &TransferJob, status: WcStatus) {
    if job.ghost {
        // Injected duplicates never completed at the sender in the first
        // place: no CQE, no slot release, no error state.
        return;
    }
    let Ok(src_node) = net.node(job.src_node) else {
        return;
    };
    let Ok(src_qp) = src_node.qp(job.src_qp) else {
        return;
    };
    src_qp.release_send_slot();
    if status == WcStatus::Success {
        src_qp.counters().completed_success.inc();
        src_qp.counters().bytes_completed.add(job.total_len as u64);
    } else {
        src_qp.counters().completed_error.inc();
        src_qp.set_error();
    }
    let opcode = match job.opcode {
        Opcode::Send | Opcode::SendWithImm => WcOpcode::Send,
        _ => WcOpcode::RdmaWrite,
    };
    src_qp.send_cq().push(WorkCompletion {
        wr_id: job.wr_id,
        status,
        opcode,
        byte_len: job.total_len,
        imm: None,
        qp_num: src_qp.qp_num(),
        flow: job.flow,
        pushed_ns: net.telemetry().flows.now(),
    });
}

/// The retry/timeout attributes of the QP that posted `job`, for fabrics
/// and reliability decorators deciding how often to retry and how long to
/// back off. `None` if the source QP no longer resolves.
pub fn sender_retry_profile(
    net: &Arc<NetworkState>,
    job: &TransferJob,
) -> Option<crate::qp::RetryProfile> {
    let node = net.node(job.src_node).ok()?;
    let qp = node.qp(job.src_qp).ok()?;
    Some(qp.retry_profile())
}

/// Map a delivery outcome to the send-side completion status.
pub fn outcome_status(outcome: &DeliveryOutcome) -> WcStatus {
    match outcome {
        DeliveryOutcome::Delivered { .. } => WcStatus::Success,
        // The payload of this PSN already landed via an earlier attempt, so
        // from the WR's point of view the transfer succeeded.
        DeliveryOutcome::Duplicate => WcStatus::Success,
        DeliveryOutcome::RemoteAccessError => WcStatus::RemoteAccessError,
        DeliveryOutcome::ReceiverNotReady => WcStatus::RnrRetryExceeded,
        DeliveryOutcome::PayloadTooLarge => WcStatus::LocalLengthError,
    }
}
