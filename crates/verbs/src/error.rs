//! Error types for the verbs layer.

use std::fmt;

use crate::types::QpState;

/// Errors returned by verbs operations. Mirrors the errno-style failures of
/// libibverbs, but as a typed enum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerbsError {
    /// Operation requires a different QP state (e.g. posting a send on a QP
    /// that is not Ready-to-Send).
    InvalidQpState {
        /// State the QP was in.
        actual: QpState,
        /// State the operation requires.
        required: QpState,
    },
    /// Illegal QP state transition.
    InvalidTransition {
        /// State the QP was in.
        from: QpState,
        /// Requested new state.
        to: QpState,
    },
    /// The send queue already holds the maximum number of outstanding work
    /// requests (the ConnectX-5 class hardware the paper targets allows 16
    /// concurrent RDMA WRs per QP).
    SendQueueFull {
        /// The configured cap.
        max_outstanding: u32,
    },
    /// The receive queue is at capacity.
    RecvQueueFull,
    /// An SGE references an unknown local key.
    InvalidLKey {
        /// Offending lkey.
        lkey: u32,
    },
    /// An SGE or remote write range falls outside its memory region.
    OutOfBounds {
        /// Key of the region.
        key: u32,
        /// Start offset requested.
        addr: u64,
        /// Length requested.
        len: u64,
        /// Region length.
        region_len: u64,
    },
    /// A work request carried no scatter/gather elements.
    EmptySgList,
    /// Too many scatter/gather elements for the QP's capability.
    TooManySges {
        /// Elements supplied.
        got: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// An inline send exceeded the QP's `max_inline_data`.
    InlineTooLarge {
        /// Payload length supplied.
        got: u32,
        /// QP inline capacity.
        max: u32,
    },
    /// The QP has not been connected to a peer yet.
    PeerNotSet,
    /// The opcode is not valid for this call (e.g. posting `Recv` through
    /// `post_send`).
    BadOpcode,
    /// Object belongs to a different protection domain.
    ProtectionDomainMismatch,
    /// Referenced node does not exist in the network.
    UnknownNode(u32),
    /// Referenced QP number does not exist on the node.
    UnknownQp(u32),
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidQpState { actual, required } => {
                write!(f, "QP in state {actual:?}, operation requires {required:?}")
            }
            VerbsError::InvalidTransition { from, to } => {
                write!(f, "illegal QP transition {from:?} -> {to:?}")
            }
            VerbsError::SendQueueFull { max_outstanding } => {
                write!(f, "send queue full ({max_outstanding} WRs outstanding)")
            }
            VerbsError::RecvQueueFull => write!(f, "receive queue full"),
            VerbsError::InvalidLKey { lkey } => write!(f, "invalid lkey {lkey:#x}"),
            VerbsError::OutOfBounds {
                key,
                addr,
                len,
                region_len,
            } => write!(
                f,
                "access [{addr:#x}, +{len}) out of bounds for region {key:#x} of length {region_len}"
            ),
            VerbsError::EmptySgList => write!(f, "work request has no scatter/gather elements"),
            VerbsError::TooManySges { got, max } => {
                write!(f, "{got} scatter/gather elements exceed the maximum of {max}")
            }
            VerbsError::InlineTooLarge { got, max } => {
                write!(f, "inline payload of {got} bytes exceeds max_inline_data {max}")
            }
            VerbsError::PeerNotSet => write!(f, "QP not connected to a peer"),
            VerbsError::BadOpcode => write!(f, "opcode invalid for this operation"),
            VerbsError::ProtectionDomainMismatch => {
                write!(f, "object belongs to a different protection domain")
            }
            VerbsError::UnknownNode(n) => write!(f, "unknown node {n}"),
            VerbsError::UnknownQp(q) => write!(f, "unknown QP number {q}"),
        }
    }
}

impl std::error::Error for VerbsError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, VerbsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// One instance of every variant, paired with a substring its `Display`
    /// output must carry (so diagnostics never degenerate into `Debug`
    /// dumps or lose the offending values).
    fn all_variants() -> Vec<(VerbsError, &'static str)> {
        vec![
            (
                VerbsError::InvalidQpState {
                    actual: QpState::Reset,
                    required: QpState::ReadyToSend,
                },
                "QP in state Reset",
            ),
            (
                VerbsError::InvalidTransition {
                    from: QpState::Init,
                    to: QpState::ReadyToSend,
                },
                "illegal QP transition Init -> ReadyToSend",
            ),
            (
                VerbsError::SendQueueFull {
                    max_outstanding: 16,
                },
                "send queue full (16",
            ),
            (VerbsError::RecvQueueFull, "receive queue full"),
            (VerbsError::InvalidLKey { lkey: 0xBEEF }, "0xbeef"),
            (
                VerbsError::OutOfBounds {
                    key: 0x10,
                    addr: 0x40,
                    len: 128,
                    region_len: 64,
                },
                "out of bounds",
            ),
            (VerbsError::EmptySgList, "no scatter/gather"),
            (VerbsError::TooManySges { got: 5, max: 4 }, "5 scatter"),
            (
                VerbsError::InlineTooLarge { got: 512, max: 220 },
                "512 bytes exceeds max_inline_data 220",
            ),
            (VerbsError::PeerNotSet, "not connected"),
            (VerbsError::BadOpcode, "opcode invalid"),
            (
                VerbsError::ProtectionDomainMismatch,
                "different protection domain",
            ),
            (VerbsError::UnknownNode(3), "unknown node 3"),
            (VerbsError::UnknownQp(9), "unknown QP number 9"),
        ]
    }

    #[test]
    fn display_carries_the_diagnostic_for_every_variant() {
        for (err, needle) in all_variants() {
            let text = err.to_string();
            assert!(
                text.contains(needle),
                "{err:?}: display {text:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn verbs_errors_are_leaf_errors() {
        // The verbs layer is the bottom of the stack: no variant wraps a
        // deeper cause.
        for (err, _) in all_variants() {
            assert!(err.source().is_none(), "{err:?} should have no source");
        }
    }
}
