//! The network of nodes and the per-node device context.
//!
//! A [`Network`] is a set of nodes (host + NIC pairs) joined by one fabric.
//! [`Context`] is the user-space device handle (`ibv_open_device` analogue):
//! it allocates protection domains, registers memory, and creates CQs and
//! QPs on its node.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use partix_telemetry::{QpSnapshot, Registry, Snapshot};

use crate::buf::PayloadArena;
use crate::cq::CompletionQueue;
use crate::error::{Result, VerbsError};
use crate::fabric::Fabric;
use crate::memory::{MemoryRegion, MrRegistry};
use crate::qp::{QpCaps, QueuePair};
use crate::types::NodeId;

/// Per-node state: registered memory and live QPs.
pub struct NodeCtx {
    /// Node identifier.
    pub id: NodeId,
    pub(crate) mrs: MrRegistry,
    qps: RwLock<HashMap<u32, Arc<QueuePair>>>,
}

impl NodeCtx {
    fn new(id: NodeId) -> Arc<Self> {
        Arc::new(NodeCtx {
            id,
            mrs: MrRegistry::new(id),
            qps: RwLock::new(HashMap::new()),
        })
    }

    /// Look up a QP by number.
    pub fn qp(&self, qp_num: u32) -> Result<Arc<QueuePair>> {
        self.qps
            .read()
            .get(&qp_num)
            .cloned()
            .ok_or(VerbsError::UnknownQp(qp_num))
    }

    /// Number of registered memory regions (diagnostics).
    pub fn mr_count(&self) -> usize {
        self.mrs.count()
    }

    /// Number of live QPs (diagnostics).
    pub fn qp_count(&self) -> usize {
        self.qps.read().len()
    }
}

/// Shared, fabric-visible network state: the set of nodes.
pub struct NetworkState {
    nodes: Vec<Arc<NodeCtx>>,
    next_qp_num: AtomicU32,
    next_cq_id: AtomicU32,
    next_pd_id: AtomicU32,
    telemetry: Arc<Registry>,
    arena: PayloadArena,
}

impl NetworkState {
    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Result<Arc<NodeCtx>> {
        self.nodes
            .get(id as usize)
            .cloned()
            .ok_or(VerbsError::UnknownNode(id))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The telemetry registry every layer of this network reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// The payload arena the data plane recycles its buffers through.
    pub fn arena(&self) -> &PayloadArena {
        &self.arena
    }

    /// Freeze the complete telemetry ledger: per-QP counters are read
    /// alongside each QP's live state (outstanding slots, receive depth,
    /// state machine position), plus every CQ, the wire, and the runtime.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut qps = Vec::new();
        for node in &self.nodes {
            let map = node.qps.read();
            let mut nums: Vec<u32> = map.keys().copied().collect();
            nums.sort_unstable();
            for num in nums {
                let qp = &map[&num];
                let c = qp.counters();
                qps.push(QpSnapshot {
                    node: node.id,
                    qp_num: num,
                    state: qp.state().name(),
                    outstanding: qp.outstanding() as u64,
                    recv_queue_depth: qp.recv_queue_depth() as u64,
                    send_posted: c.send_posted.get(),
                    recv_posted: c.recv_posted.get(),
                    recv_consumed: c.recv_consumed.get(),
                    completed_success: c.completed_success.get(),
                    completed_error: c.completed_error.get(),
                    bytes_posted: c.bytes_posted.get(),
                    bytes_completed: c.bytes_completed.get(),
                    recoveries: c.recoveries.get(),
                    slot_underflows: c.slot_underflows.get(),
                });
            }
        }
        Snapshot {
            qps,
            cqs: self.telemetry.cq_snapshots(),
            wire: self.telemetry.wire_snapshot(),
            runtime: self.telemetry.runtime_snapshot(),
            arena: self.telemetry.arena_snapshot(),
        }
    }
}

/// A network: nodes plus the fabric that moves bytes between them.
#[derive(Clone)]
pub struct Network {
    state: Arc<NetworkState>,
    fabric: Arc<dyn Fabric>,
}

impl Network {
    /// Create a network of `nodes` nodes over `fabric`.
    pub fn new(nodes: u32, fabric: Arc<dyn Fabric>) -> Self {
        let telemetry = Arc::new(Registry::new());
        let arena = PayloadArena::new();
        arena.set_telemetry(telemetry.clone());
        let state = Arc::new(NetworkState {
            nodes: (0..nodes).map(NodeCtx::new).collect(),
            next_qp_num: AtomicU32::new(1),
            next_cq_id: AtomicU32::new(1),
            next_pd_id: AtomicU32::new(1),
            telemetry,
            arena,
        });
        Network { state, fabric }
    }

    /// Shared state handle.
    pub fn state(&self) -> &Arc<NetworkState> {
        &self.state
    }

    /// The fabric.
    pub fn fabric(&self) -> &Arc<dyn Fabric> {
        &self.fabric
    }

    /// Open a device context on `node` (`ibv_open_device`).
    pub fn open(&self, node: NodeId) -> Result<Context> {
        let node_ctx = self.state.node(node)?;
        Ok(Context {
            node: node_ctx,
            state: self.state.clone(),
            fabric: self.fabric.clone(),
        })
    }
}

/// A protection domain handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtectionDomain {
    /// Domain identifier.
    pub id: u32,
    /// Node the domain lives on.
    pub node: NodeId,
}

/// User-space device context for one node.
#[derive(Clone)]
pub struct Context {
    node: Arc<NodeCtx>,
    state: Arc<NetworkState>,
    fabric: Arc<dyn Fabric>,
}

impl Context {
    /// The node this context operates on.
    pub fn node_id(&self) -> NodeId {
        self.node.id
    }

    /// Node state (diagnostics).
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Allocate a protection domain (`ibv_alloc_pd`).
    pub fn alloc_pd(&self) -> ProtectionDomain {
        ProtectionDomain {
            id: self.state.next_pd_id.fetch_add(1, Ordering::Relaxed),
            node: self.node.id,
        }
    }

    /// Register a memory region of `len` bytes (`ibv_reg_mr`).
    pub fn reg_mr(&self, pd: ProtectionDomain, len: usize) -> Result<MemoryRegion> {
        if pd.node != self.node.id {
            return Err(VerbsError::ProtectionDomainMismatch);
        }
        Ok(self.node.mrs.register(pd.id, len))
    }

    /// Register a virtual (timing-only, storage-free) region for
    /// `copy_data = false` studies.
    pub fn reg_mr_virtual(&self, pd: ProtectionDomain, len: usize) -> Result<MemoryRegion> {
        if pd.node != self.node.id {
            return Err(VerbsError::ProtectionDomainMismatch);
        }
        Ok(self.node.mrs.register_virtual(pd.id, len))
    }

    /// Create a completion queue (`ibv_create_cq`).
    pub fn create_cq(&self) -> Arc<CompletionQueue> {
        let cq = CompletionQueue::new(self.state.next_cq_id.fetch_add(1, Ordering::Relaxed));
        self.state
            .telemetry
            .register_cq(cq.id(), cq.counters().clone());
        cq
    }

    /// Create a queue pair (`ibv_create_qp`).
    pub fn create_qp(
        &self,
        pd: ProtectionDomain,
        send_cq: Arc<CompletionQueue>,
        recv_cq: Arc<CompletionQueue>,
        caps: QpCaps,
    ) -> Result<Arc<QueuePair>> {
        if pd.node != self.node.id {
            return Err(VerbsError::ProtectionDomainMismatch);
        }
        let qp_num = self.state.next_qp_num.fetch_add(1, Ordering::Relaxed);
        let qp = QueuePair::new(
            qp_num,
            self.node.id,
            pd.id,
            caps,
            send_cq,
            recv_cq,
            Arc::downgrade(&self.state),
            self.fabric.clone(),
        );
        self.node.qps.write().insert(qp_num, qp.clone());
        Ok(qp)
    }
}

/// Drive both ends of a QP pair through INIT → RTR → RTS. In a real
/// deployment the QP numbers travel out-of-band (e.g. TCP or MPI's business
/// card exchange); in-process we connect directly. The partitioned runtime
/// performs this asynchronously with a modelled setup delay.
pub fn connect_pair(a: &Arc<QueuePair>, b: &Arc<QueuePair>) -> Result<()> {
    use crate::qp::PeerId;
    a.modify(crate::types::QpState::Init)?;
    b.modify(crate::types::QpState::Init)?;
    a.modify_to_rtr(PeerId {
        node: b.node(),
        qp_num: b.qp_num(),
    })?;
    b.modify_to_rtr(PeerId {
        node: a.node(),
        qp_num: a.qp_num(),
    })?;
    a.modify_to_rts()?;
    b.modify_to_rts()?;
    Ok(())
}
