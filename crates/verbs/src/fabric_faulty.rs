//! Fault injection: a fabric decorator that corrupts selected transfers.
//!
//! Wraps any inner fabric and forces chosen work requests to fail with a
//! chosen completion status, without touching destination memory. Used to
//! test that error completions propagate through the runtime (QP error
//! states, `wait` returning `TransferFailed`) — paths that never fire on a
//! healthy fabric.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use partix_sim::split_seed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fabric::{complete_send, Fabric, TransferJob};
use crate::network::NetworkState;
use crate::types::WcStatus;

/// Which transfers to fail.
pub enum FaultPlan {
    /// Fail every `n`-th submitted transfer (1-based: `EveryNth(1)` fails
    /// all).
    EveryNth(u64),
    /// Fail the transfers whose (0-based) submission index is in the list.
    Indices(Vec<u64>),
    /// Fail each transfer independently with probability `p_fail`. The
    /// decision for submission index `i` is a pure function of `(seed, i)`,
    /// so a given seed always fails the same indices regardless of thread
    /// interleaving.
    Bernoulli {
        /// Per-transfer failure probability, in `[0, 1]`.
        p_fail: f64,
        /// Seed for the per-index decision stream.
        seed: u64,
    },
    /// Fail nothing (pass-through).
    None,
}

/// [`FaultPlan`] pre-compiled for the submit path: the `Indices` list
/// becomes a hash set so the per-transfer check is O(1) instead of a linear
/// scan under the plan lock.
enum CompiledPlan {
    EveryNth(u64),
    Indices(HashSet<u64>),
    Bernoulli { p_fail: f64, seed: u64 },
    None,
}

impl CompiledPlan {
    fn compile(plan: FaultPlan) -> Self {
        match plan {
            FaultPlan::EveryNth(n) => CompiledPlan::EveryNth(n),
            FaultPlan::Indices(v) => CompiledPlan::Indices(v.into_iter().collect()),
            FaultPlan::Bernoulli { p_fail, seed } => {
                assert!(
                    (0.0..=1.0).contains(&p_fail),
                    "p_fail must be within [0, 1]"
                );
                CompiledPlan::Bernoulli { p_fail, seed }
            }
            FaultPlan::None => CompiledPlan::None,
        }
    }
}

/// A fabric decorator that injects failures.
pub struct FaultyFabric {
    inner: Arc<dyn Fabric>,
    plan: Mutex<CompiledPlan>,
    status: WcStatus,
    submitted: AtomicU64,
    injected: AtomicU64,
}

impl FaultyFabric {
    /// Wrap `inner`, failing transfers per `plan` with `status`.
    pub fn new(inner: Arc<dyn Fabric>, plan: FaultPlan, status: WcStatus) -> Arc<Self> {
        assert_ne!(status, WcStatus::Success, "inject a failure status");
        Arc::new(FaultyFabric {
            inner,
            plan: Mutex::new(CompiledPlan::compile(plan)),
            status,
            submitted: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Replace the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = CompiledPlan::compile(plan);
    }

    /// Number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of transfers seen so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    fn should_fail(&self, index: u64) -> bool {
        match &*self.plan.lock() {
            CompiledPlan::EveryNth(n) => *n > 0 && (index + 1) % *n == 0,
            CompiledPlan::Indices(set) => set.contains(&index),
            CompiledPlan::Bernoulli { p_fail, seed } => {
                // Stateless per-index draw: derive an independent stream for
                // this submission index and take its first sample.
                let mut rng = StdRng::seed_from_u64(split_seed(*seed, "fault", index));
                rng.random::<f64>() < *p_fail
            }
            CompiledPlan::None => false,
        }
    }
}

impl Fabric for FaultyFabric {
    fn submit(&self, net: &Arc<NetworkState>, job: TransferJob) {
        let index = self.submitted.fetch_add(1, Ordering::Relaxed);
        if self.should_fail(index) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            net.telemetry().wire.injected_faults.inc();
            // The wire "ate" the transfer: no delivery, no data movement,
            // only an error completion on the sender.
            complete_send(net, &job, self.status);
            return;
        }
        self.inner.submit(net, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric_instant::InstantFabric;
    use crate::network::{connect_pair, Network};
    use crate::qp::QpCaps;
    use crate::types::{Opcode, QpState, RecvWr, SendWr, Sge};

    fn setup(plan: FaultPlan) -> (Network, Arc<FaultyFabric>) {
        let faulty = FaultyFabric::new(InstantFabric::new(), plan, WcStatus::RemoteAccessError);
        (Network::new(2, faulty.clone()), faulty)
    }

    #[test]
    fn injected_failure_produces_error_completion_and_error_qp() {
        let (net, faulty) = setup(FaultPlan::EveryNth(2));
        let a = net.open(0).unwrap();
        let b = net.open(1).unwrap();
        let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
        let (cqa, cqb) = (a.create_cq(), b.create_cq());
        let qa = a
            .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
            .unwrap();
        let qb = b
            .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
            .unwrap();
        connect_pair(&qa, &qb).unwrap();
        let src = a.reg_mr(pda, 64).unwrap();
        let dst = b.reg_mr(pdb, 64).unwrap();
        src.fill(0, 64, 0x77).unwrap();
        let wr = |id| SendWr {
            wr_id: id,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: 64,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: Some(0),
            inline_data: false,
            flow: 0,
        };
        qb.post_recv(RecvWr::bare(0)).unwrap();
        qb.post_recv(RecvWr::bare(1)).unwrap();

        // First transfer passes through.
        qa.post_send(wr(1)).unwrap();
        assert_eq!(cqa.poll_one().unwrap().status, WcStatus::Success);
        assert_eq!(dst.read_vec(0, 1).unwrap(), vec![0x77]);

        // Second transfer is eaten.
        dst.fill(0, 64, 0).unwrap();
        qa.post_send(wr(2)).unwrap();
        let wc = cqa.poll_one().unwrap();
        assert_eq!(wc.status, WcStatus::RemoteAccessError);
        assert_eq!(dst.read_vec(0, 1).unwrap(), vec![0]);
        assert_eq!(qa.state(), QpState::Error);
        assert_eq!(faulty.injected(), 1);
        assert_eq!(faulty.submitted(), 2);
        // No receive-side completion for the failed transfer.
        assert_eq!(cqb.total_pushed(), 1);
    }

    #[test]
    fn none_plan_passes_everything() {
        let (_net, faulty) = setup(FaultPlan::None);
        assert!(!faulty.should_fail(0));
        faulty.set_plan(FaultPlan::Indices(vec![3, 5]));
        assert!(!faulty.should_fail(2));
        assert!(faulty.should_fail(3));
        assert!(faulty.should_fail(5));
    }

    #[test]
    fn bernoulli_plan_is_deterministic_per_index() {
        let (_net, faulty) = setup(FaultPlan::Bernoulli {
            p_fail: 0.3,
            seed: 42,
        });
        let first: Vec<bool> = (0..256).map(|i| faulty.should_fail(i)).collect();
        // Same (seed, index) always yields the same decision.
        let second: Vec<bool> = (0..256).map(|i| faulty.should_fail(i)).collect();
        assert_eq!(first, second);
        // Roughly p_fail of indices fail (256 draws at p=0.3: wide margin).
        let fails = first.iter().filter(|&&f| f).count();
        assert!((30..=130).contains(&fails), "got {fails} failures");
        // A different seed yields a different pattern.
        faulty.set_plan(FaultPlan::Bernoulli {
            p_fail: 0.3,
            seed: 43,
        });
        let other: Vec<bool> = (0..256).map(|i| faulty.should_fail(i)).collect();
        assert_ne!(first, other);
        // Degenerate probabilities behave as constants.
        faulty.set_plan(FaultPlan::Bernoulli {
            p_fail: 0.0,
            seed: 1,
        });
        assert!((0..64).all(|i| !faulty.should_fail(i)));
        faulty.set_plan(FaultPlan::Bernoulli {
            p_fail: 1.0,
            seed: 1,
        });
        assert!((0..64).all(|i| faulty.should_fail(i)));
    }
}
