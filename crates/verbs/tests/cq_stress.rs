//! Multi-threaded completion-queue stress: concurrent pushers and pollers
//! must neither lose nor duplicate completions, and notify hooks must fire
//! for every push.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use partix_verbs::{connect_pair, InstantFabric, Network, Opcode, QpCaps, RecvWr, SendWr, Sge};

#[test]
fn concurrent_senders_one_progress_thread() {
    // 8 sender threads × 200 writes each through one QP pair (send slots
    // recycle synchronously on the instant fabric); a progress thread
    // drains both CQs. Every wr_id must be seen exactly once on each side.
    let net = Network::new(2, InstantFabric::new());
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());

    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    const TOTAL: usize = THREADS * PER_THREAD;

    // One QP pair per sender thread (post_send is per-QP serialised by the
    // outstanding cap; separate QPs keep the stress realistic).
    let mut pairs = Vec::new();
    for _ in 0..THREADS {
        let qa = a
            .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
            .unwrap();
        let caps = QpCaps {
            max_recv_wr: (PER_THREAD + 8) as u32,
            ..QpCaps::default()
        };
        let qb = b.create_qp(pdb, b.create_cq(), cqb.clone(), caps).unwrap();
        connect_pair(&qa, &qb).unwrap();
        for i in 0..PER_THREAD {
            qb.post_recv(RecvWr::bare((i) as u64)).unwrap();
        }
        pairs.push((qa, qb));
    }
    let src = a.reg_mr(pda, 64).unwrap();
    let dst = b.reg_mr(pdb, 64 * TOTAL).unwrap();

    let pushed_notify = Arc::new(AtomicUsize::new(0));
    let n2 = pushed_notify.clone();
    cqb.set_notify(Arc::new(move || {
        n2.fetch_add(1, Ordering::Relaxed);
    }));

    let seen_send: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let seen_recv: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Progress thread.
        {
            let (seen_send, seen_recv, done) = (seen_send.clone(), seen_recv.clone(), done.clone());
            let (cqa, cqb) = (cqa.clone(), cqb.clone());
            s.spawn(move || {
                let mut buf = Vec::new();
                loop {
                    buf.clear();
                    cqa.poll(64, &mut buf);
                    {
                        let mut set = seen_send.lock();
                        for wc in &buf {
                            assert!(set.insert(wc.wr_id), "duplicate send wc {}", wc.wr_id);
                        }
                    }
                    buf.clear();
                    cqb.poll(64, &mut buf);
                    {
                        let mut set = seen_recv.lock();
                        for wc in &buf {
                            // recv wr_ids repeat across QPs; key by (qp, id).
                            let key = (wc.qp_num as u64) << 32 | wc.wr_id;
                            assert!(set.insert(key), "duplicate recv wc {key}");
                        }
                    }
                    if done.load(Ordering::Acquire) == THREADS as u64
                        && seen_send.lock().len() == TOTAL
                        && seen_recv.lock().len() == TOTAL
                    {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Sender threads.
        for (t, (qa, _)) in pairs.iter().enumerate() {
            let done = done.clone();
            let src = src.clone();
            let dst = dst.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let wr_id = (t * PER_THREAD + i) as u64;
                    qa.post_send(SendWr {
                        wr_id,
                        opcode: Opcode::RdmaWriteWithImm,
                        sg_list: vec![Sge {
                            addr: src.addr(),
                            length: 64,
                            lkey: src.lkey(),
                        }],
                        remote_addr: dst.addr_at(wr_id as usize * 64),
                        rkey: dst.rkey(),
                        imm: Some(wr_id as u32),
                        inline_data: false,
                        flow: 0,
                    })
                    .unwrap();
                }
                done.fetch_add(1, Ordering::AcqRel);
            });
        }
    });

    assert_eq!(seen_send.lock().len(), TOTAL);
    assert_eq!(seen_recv.lock().len(), TOTAL);
    assert_eq!(pushed_notify.load(Ordering::Relaxed), TOTAL);
    assert_eq!(cqa.total_pushed(), TOTAL as u64);
    assert_eq!(cqb.total_polled(), TOTAL as u64);
}
