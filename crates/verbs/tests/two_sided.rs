//! Tests for the two-sided SEND/RECV path: payload scattering into receive
//! WR buffers, length enforcement, and immediates.

use partix_sim::Scheduler;
use partix_verbs::{
    connect_pair, FabricParams, InstantFabric, Network, Opcode, QpCaps, RecvWr, SendWr, Sge,
    SimFabric, VerbsError, WcOpcode, WcStatus,
};

fn two_nodes(net: &Network) -> (partix_verbs::Context, partix_verbs::Context) {
    (net.open(0).unwrap(), net.open(1).unwrap())
}

#[test]
fn send_scatters_into_recv_buffers() {
    let net = Network::new(2, InstantFabric::new());
    let (a, b) = two_nodes(&net);
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();

    let src = a.reg_mr(pda, 96).unwrap();
    src.write(0, &(0..96u8).collect::<Vec<_>>()).unwrap();
    // Receive into two disjoint regions: 40 bytes then 60 bytes.
    let d1 = b.reg_mr(pdb, 40).unwrap();
    let d2 = b.reg_mr(pdb, 60).unwrap();
    qb.post_recv(RecvWr {
        wr_id: 9,
        sg_list: vec![
            Sge {
                addr: d1.addr(),
                length: 40,
                lkey: d1.lkey(),
            },
            Sge {
                addr: d2.addr(),
                length: 60,
                lkey: d2.lkey(),
            },
        ],
    })
    .unwrap();

    qa.post_send(SendWr {
        wr_id: 1,
        opcode: Opcode::SendWithImm,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: 96,
            lkey: src.lkey(),
        }],
        remote_addr: 0,
        rkey: 0,
        imm: Some(0xCAFE),
        inline_data: false,
        flow: 0,
    })
    .unwrap();

    let wc = cqb.poll_one().expect("recv completion");
    assert_eq!(wc.opcode, WcOpcode::Recv);
    assert_eq!(wc.status, WcStatus::Success);
    assert_eq!(wc.byte_len, 96);
    assert_eq!(wc.imm, Some(0xCAFE));
    // First 40 bytes in d1, remaining 56 in d2.
    assert_eq!(d1.read_vec(0, 40).unwrap(), (0..40u8).collect::<Vec<_>>());
    assert_eq!(d2.read_vec(0, 56).unwrap(), (40..96u8).collect::<Vec<_>>());

    let swc = cqa.poll_one().expect("send completion");
    assert_eq!(swc.opcode, WcOpcode::Send);
    assert_eq!(swc.status, WcStatus::Success);
}

#[test]
fn oversized_send_is_local_length_error() {
    let net = Network::new(2, InstantFabric::new());
    let (a, b) = two_nodes(&net);
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    let src = a.reg_mr(pda, 128).unwrap();
    let dst = b.reg_mr(pdb, 64).unwrap();
    qb.post_recv(RecvWr {
        wr_id: 0,
        sg_list: vec![Sge {
            addr: dst.addr(),
            length: 64,
            lkey: dst.lkey(),
        }],
    })
    .unwrap();
    qa.post_send(SendWr {
        wr_id: 1,
        opcode: Opcode::Send,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: 128,
            lkey: src.lkey(),
        }],
        remote_addr: 0,
        rkey: 0,
        imm: None,
        inline_data: false,
        flow: 0,
    })
    .unwrap();
    let wc = cqa.poll_one().unwrap();
    assert_eq!(wc.status, WcStatus::LocalLengthError);
    // Nothing was written.
    assert_eq!(dst.read_vec(0, 64).unwrap(), vec![0u8; 64]);
}

#[test]
fn post_recv_validates_scatter_list() {
    let net = Network::new(2, InstantFabric::new());
    let (_a, b) = two_nodes(&net);
    let pdb = b.alloc_pd();
    let cq = b.create_cq();
    let qb = b.create_qp(pdb, cq.clone(), cq, QpCaps::default()).unwrap();
    qb.modify(partix_verbs::QpState::Init).unwrap();
    let mr = b.reg_mr(pdb, 32).unwrap();
    // Bad lkey.
    assert!(matches!(
        qb.post_recv(RecvWr {
            wr_id: 0,
            sg_list: vec![Sge {
                addr: mr.addr(),
                length: 8,
                lkey: 0xBAD
            }],
        }),
        Err(VerbsError::InvalidLKey { .. })
    ));
    // Out of bounds.
    assert!(qb
        .post_recv(RecvWr {
            wr_id: 0,
            sg_list: vec![Sge {
                addr: mr.addr(),
                length: 64,
                lkey: mr.lkey()
            }],
        })
        .is_err());
    // Wrong PD.
    let other_pd = b.alloc_pd();
    let foreign = b.reg_mr(other_pd, 32).unwrap();
    assert_eq!(
        qb.post_recv(RecvWr {
            wr_id: 0,
            sg_list: vec![Sge {
                addr: foreign.addr(),
                length: 8,
                lkey: foreign.lkey()
            }],
        }),
        Err(VerbsError::ProtectionDomainMismatch)
    );
    // Valid.
    qb.post_recv(RecvWr {
        wr_id: 0,
        sg_list: vec![Sge {
            addr: mr.addr(),
            length: 32,
            lkey: mr.lkey(),
        }],
    })
    .unwrap();
}

#[test]
fn two_sided_over_sim_fabric() {
    let sched = Scheduler::new();
    let fabric = SimFabric::new(sched.clone(), FabricParams::default());
    let net = Network::new(2, fabric);
    let (a, b) = two_nodes(&net);
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    let src = a.reg_mr(pda, 4096).unwrap();
    src.fill(0, 4096, 0x3C).unwrap();
    let dst = b.reg_mr(pdb, 4096).unwrap();
    qb.post_recv(RecvWr {
        wr_id: 5,
        sg_list: vec![Sge {
            addr: dst.addr(),
            length: 4096,
            lkey: dst.lkey(),
        }],
    })
    .unwrap();
    qa.post_send(SendWr {
        wr_id: 6,
        opcode: Opcode::Send,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: 4096,
            lkey: src.lkey(),
        }],
        remote_addr: 0,
        rkey: 0,
        imm: None,
        inline_data: false,
        flow: 0,
    })
    .unwrap();
    assert!(cqb.poll_one().is_none(), "nothing before the sim runs");
    sched.run();
    assert_eq!(cqb.poll_one().unwrap().byte_len, 4096);
    assert_eq!(dst.read_vec(0, 4096).unwrap(), vec![0x3C; 4096]);
    assert!(sched.now().as_nanos() > 1_000, "took modelled time");
}

#[test]
fn inline_send_snapshots_payload_at_post_time() {
    let net = Network::new(2, InstantFabric::new());
    let (a, b) = two_nodes(&net);
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    let src = a.reg_mr(pda, 64).unwrap();
    let dst = b.reg_mr(pdb, 64).unwrap();
    src.fill(0, 64, 0x11).unwrap();

    // Use the sim fabric semantics? Instant delivers at post, so to observe
    // the snapshot we use the SimFabric: post, then scribble over the
    // source, then run the clock.
    let sched = Scheduler::new();
    let sim = SimFabric::new(sched.clone(), FabricParams::default());
    let net2 = Network::new(2, sim);
    let (a2, b2) = two_nodes(&net2);
    let (pda2, pdb2) = (a2.alloc_pd(), b2.alloc_pd());
    let (cqa2, cqb2) = (a2.create_cq(), b2.create_cq());
    let qa2 = a2
        .create_qp(pda2, cqa2.clone(), a2.create_cq(), QpCaps::default())
        .unwrap();
    let qb2 = b2
        .create_qp(pdb2, b2.create_cq(), cqb2.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa2, &qb2).unwrap();
    let src2 = a2.reg_mr(pda2, 64).unwrap();
    let dst2 = b2.reg_mr(pdb2, 64).unwrap();
    src2.fill(0, 64, 0x22).unwrap();
    qb2.post_recv(RecvWr::bare(0)).unwrap();
    qa2.post_send(SendWr {
        wr_id: 1,
        opcode: Opcode::RdmaWriteWithImm,
        sg_list: vec![Sge {
            addr: src2.addr(),
            length: 64,
            lkey: src2.lkey(),
        }],
        remote_addr: dst2.addr(),
        rkey: dst2.rkey(),
        imm: Some(0),
        inline_data: true,
        flow: 0,
    })
    .unwrap();
    // Scribble before the simulated wire delivers: the receiver must still
    // see the snapshot.
    src2.fill(0, 64, 0xEE).unwrap();
    sched.run();
    assert_eq!(dst2.read_vec(0, 64).unwrap(), vec![0x22; 64]);

    // Contrast: a non-inline post gathers at delivery and sees the scribble.
    qb2.post_recv(RecvWr::bare(1)).unwrap();
    qa2.post_send(SendWr {
        wr_id: 2,
        opcode: Opcode::RdmaWriteWithImm,
        sg_list: vec![Sge {
            addr: src2.addr(),
            length: 64,
            lkey: src2.lkey(),
        }],
        remote_addr: dst2.addr(),
        rkey: dst2.rkey(),
        imm: Some(0),
        inline_data: false,
        flow: 0,
    })
    .unwrap();
    src2.fill(0, 64, 0x99).unwrap();
    sched.run();
    assert_eq!(dst2.read_vec(0, 64).unwrap(), vec![0x99; 64]);

    // And the cap is enforced.
    let big = a.reg_mr(pda, 1024).unwrap();
    let err = qa
        .post_send(SendWr {
            wr_id: 3,
            opcode: Opcode::RdmaWrite,
            sg_list: vec![Sge {
                addr: big.addr(),
                length: 1024,
                lkey: big.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: None,
            inline_data: true,
            flow: 0,
        })
        .unwrap_err();
    assert_eq!(
        err,
        VerbsError::InlineTooLarge {
            got: 1024,
            max: 220
        }
    );
    let _ = (cqb, src);
}
