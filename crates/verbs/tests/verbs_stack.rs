//! End-to-end tests of the verbs stack on both fabrics: connection setup,
//! RDMA-write-with-immediate data movement, completion semantics, hardware
//! limits, and protection errors.

use std::sync::Arc;

use partix_sim::{Scheduler, SimTime};
use partix_verbs::{
    connect_pair, imm, CompletionQueue, Context, FabricParams, InstantFabric, Network, Opcode,
    QpCaps, QpState, QueuePair, RecvWr, SendWr, Sge, SimFabric, VerbsError, WcOpcode, WcStatus,
};

struct Pair {
    _net: Network,
    a: Context,
    b: Context,
    qa: Arc<QueuePair>,
    qb: Arc<QueuePair>,
    cq_a_send: Arc<CompletionQueue>,
    cq_b_recv: Arc<CompletionQueue>,
}

fn setup(net: Network) -> Pair {
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let pda = a.alloc_pd();
    let pdb = b.alloc_pd();
    let cq_a_send = a.create_cq();
    let cq_a_recv = a.create_cq();
    let cq_b_send = b.create_cq();
    let cq_b_recv = b.create_cq();
    let qa = a
        .create_qp(pda, cq_a_send.clone(), cq_a_recv, QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, cq_b_send, cq_b_recv.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    Pair {
        _net: net,
        a,
        b,
        qa,
        qb,
        cq_a_send,
        cq_b_recv,
    }
}

fn instant_pair() -> Pair {
    setup(Network::new(2, InstantFabric::new()))
}

fn sim_pair() -> (Pair, Scheduler) {
    let sched = Scheduler::new();
    let fabric = SimFabric::new(sched.clone(), FabricParams::default());
    (setup(Network::new(2, fabric)), sched)
}

fn write_with_imm(
    pair: &Pair,
    src_data: &[u8],
    imm_val: u32,
) -> (partix_verbs::MemoryRegion, partix_verbs::MemoryRegion) {
    let pda = pair.a.alloc_pd();
    let pdb = pair.b.alloc_pd();
    // QPs were created under earlier PDs; register under the QP's PD instead.
    let _ = (pda, pdb);
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            src_data.len(),
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            src_data.len(),
        )
        .unwrap();
    src.write(0, src_data).unwrap();
    pair.qb.post_recv(RecvWr::bare(77)).unwrap();
    pair.qa
        .post_send(SendWr {
            wr_id: 42,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: src_data.len() as u32,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: Some(imm_val),
            inline_data: false,
            flow: 0,
        })
        .unwrap();
    (src, dst)
}

#[test]
fn instant_write_with_imm_moves_data_and_completes_both_sides() {
    let pair = instant_pair();
    let payload: Vec<u8> = (0..=255u8).collect();
    let (_src, dst) = write_with_imm(&pair, &payload, imm::encode(3, 9));

    // Data landed.
    assert_eq!(dst.read_vec(0, 256).unwrap(), payload);

    // Receive completion with immediate.
    let wc = pair.cq_b_recv.poll_one().expect("recv completion");
    assert_eq!(wc.wr_id, 77);
    assert_eq!(wc.status, WcStatus::Success);
    assert_eq!(wc.opcode, WcOpcode::RecvRdmaWithImm);
    assert_eq!(wc.byte_len, 256);
    assert_eq!(imm::decode(wc.imm.unwrap()), (3, 9));

    // Send completion.
    let wc = pair.cq_a_send.poll_one().expect("send completion");
    assert_eq!(wc.wr_id, 42);
    assert_eq!(wc.status, WcStatus::Success);
    assert_eq!(pair.qa.outstanding(), 0);
}

#[test]
fn sim_write_with_imm_takes_modelled_time() {
    let (pair, sched) = sim_pair();
    let payload = vec![0xABu8; 1 << 20]; // 1 MiB
    let (_src, dst) = write_with_imm(&pair, &payload, imm::encode(0, 1));

    // Nothing happens until the simulation runs.
    assert!(pair.cq_b_recv.poll_one().is_none());
    assert_eq!(dst.read_vec(0, 16).unwrap(), vec![0u8; 16]);

    sched.run();

    assert_eq!(dst.read_vec(0, 1 << 20).unwrap(), payload);
    assert!(pair.cq_b_recv.poll_one().is_some());
    assert!(pair.cq_a_send.poll_one().is_some());

    // 1 MiB at ~6.9 GB/s single-QP (= 11.5 GB/s * 0.6) is ~152 us; the clock
    // must have advanced at least the pure link time and less than 10x it.
    let t = sched.now();
    let link_time_ns = (1u64 << 20) as f64 * FabricParams::default().link_g();
    assert!(t > SimTime(link_time_ns as u64), "too fast: {t}");
    assert!(t < SimTime((10.0 * link_time_ns) as u64), "too slow: {t}");
}

#[test]
fn sim_multiple_qps_increase_bandwidth() {
    // Send 8 x 1 MiB over 1 QP vs over 8 QPs: the 8-QP run must finish
    // faster (per-QP engine limits a single QP below link rate).
    fn run(qp_count: usize) -> u64 {
        let sched = Scheduler::new();
        let fabric = SimFabric::new(sched.clone(), FabricParams::default());
        let net = Network::new(2, fabric);
        let a = net.open(0).unwrap();
        let b = net.open(1).unwrap();
        let pda = a.alloc_pd();
        let pdb = b.alloc_pd();
        let cqa = a.create_cq();
        let cqb = b.create_cq();
        let mut qps = Vec::new();
        for _ in 0..qp_count {
            let qa = a
                .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
                .unwrap();
            let qb = b
                .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
                .unwrap();
            connect_pair(&qa, &qb).unwrap();
            qps.push((qa, qb));
        }
        let chunk = 1 << 20;
        let src = a.reg_mr(pda, 8 * chunk).unwrap();
        let dst = b.reg_mr(pdb, 8 * chunk).unwrap();
        for i in 0..8 {
            let (qa, qb) = &qps[i % qp_count];
            qb.post_recv(RecvWr::bare(i as u64)).unwrap();
            qa.post_send(SendWr {
                wr_id: i as u64,
                opcode: Opcode::RdmaWriteWithImm,
                sg_list: vec![Sge {
                    addr: src.addr_at(i * chunk),
                    length: chunk as u32,
                    lkey: src.lkey(),
                }],
                remote_addr: dst.addr_at(i * chunk),
                rkey: dst.rkey(),
                imm: Some(0),
                inline_data: false,
                flow: 0,
            })
            .unwrap();
        }
        sched.run();
        assert_eq!(cqb.total_pushed(), 8);
        sched.now().as_nanos()
    }
    let one = run(1);
    let eight = run(8);
    assert!(
        eight * 5 < one * 4,
        "8 QPs ({eight} ns) should beat 1 QP ({one} ns) by >20%"
    );
}

#[test]
fn send_queue_cap_enforced() {
    let (pair, _sched) = sim_pair();
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            4096,
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            4096,
        )
        .unwrap();
    let wr = |i: u64| SendWr {
        wr_id: i,
        opcode: Opcode::RdmaWrite,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: 64,
            lkey: src.lkey(),
        }],
        remote_addr: dst.addr(),
        rkey: dst.rkey(),
        imm: None,
        inline_data: false,
        flow: 0,
    };
    // The paper's hardware takes 16 concurrent RDMA WRs per QP.
    for i in 0..16 {
        pair.qa.post_send(wr(i)).unwrap();
    }
    assert_eq!(
        pair.qa.post_send(wr(16)),
        Err(VerbsError::SendQueueFull {
            max_outstanding: 16
        })
    );
    assert_eq!(pair.qa.outstanding(), 16);
}

#[test]
fn send_slots_recycle_after_completion() {
    let pair = instant_pair();
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            64,
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            64,
        )
        .unwrap();
    // Instant fabric completes synchronously, so far more than 16 sequential
    // posts must succeed.
    for i in 0..100u64 {
        pair.qa
            .post_send(SendWr {
                wr_id: i,
                opcode: Opcode::RdmaWrite,
                sg_list: vec![Sge {
                    addr: src.addr(),
                    length: 64,
                    lkey: src.lkey(),
                }],
                remote_addr: dst.addr(),
                rkey: dst.rkey(),
                imm: None,
                inline_data: false,
                flow: 0,
            })
            .unwrap();
    }
    assert_eq!(pair.qa.outstanding(), 0);
    assert_eq!(pair.qa.total_posted_sends(), 100);
}

#[test]
fn rdma_write_without_recv_wr_is_rnr() {
    let pair = instant_pair();
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            64,
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            64,
        )
        .unwrap();
    // No post_recv on the B side.
    pair.qa
        .post_send(SendWr {
            wr_id: 1,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: 64,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: Some(0),
            inline_data: false,
            flow: 0,
        })
        .unwrap();
    let wc = pair.cq_a_send.poll_one().unwrap();
    assert_eq!(wc.status, WcStatus::RnrRetryExceeded);
    // The QP entered the error state, as real hardware would.
    assert_eq!(pair.qa.state(), QpState::Error);
    // RNR failure had no data side effects.
    assert_eq!(dst.read_vec(0, 64).unwrap(), vec![0u8; 64]);
}

#[test]
fn wrong_rkey_is_remote_access_error() {
    let pair = instant_pair();
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            64,
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            64,
        )
        .unwrap();
    pair.qb.post_recv(RecvWr::bare(0)).unwrap();
    pair.qa
        .post_send(SendWr {
            wr_id: 1,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: 64,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey() ^ 0xdead,
            imm: Some(0),
            inline_data: false,
            flow: 0,
        })
        .unwrap();
    let wc = pair.cq_a_send.poll_one().unwrap();
    assert_eq!(wc.status, WcStatus::RemoteAccessError);
    assert_eq!(dst.read_vec(0, 64).unwrap(), vec![0u8; 64]);
    // Receive WR must not have been consumed by the failed write.
    assert_eq!(pair.qb.recv_queue_depth(), 1);
}

#[test]
fn post_send_requires_rts() {
    let net = Network::new(2, InstantFabric::new());
    let a = net.open(0).unwrap();
    let pd = a.alloc_pd();
    let cq = a.create_cq();
    let qp = a.create_qp(pd, cq.clone(), cq, QpCaps::default()).unwrap();
    let mr = a.reg_mr(pd, 64).unwrap();
    let wr = SendWr {
        wr_id: 0,
        opcode: Opcode::RdmaWrite,
        sg_list: vec![Sge {
            addr: mr.addr(),
            length: 8,
            lkey: mr.lkey(),
        }],
        remote_addr: 0,
        rkey: 0,
        imm: None,
        inline_data: false,
        flow: 0,
    };
    assert!(matches!(
        qp.post_send(wr),
        Err(VerbsError::InvalidQpState { .. })
    ));
}

#[test]
fn gather_list_concatenates_segments() {
    let pair = instant_pair();
    let src = pair
        .a
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qa.pd_id(),
                node: 0,
            },
            256,
        )
        .unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            64,
        )
        .unwrap();
    src.write(0, &[1u8; 16]).unwrap();
    src.write(100, &[2u8; 16]).unwrap();
    src.write(200, &[3u8; 16]).unwrap();
    pair.qb.post_recv(RecvWr::bare(0)).unwrap();
    pair.qa
        .post_send(SendWr {
            wr_id: 0,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![
                Sge {
                    addr: src.addr_at(0),
                    length: 16,
                    lkey: src.lkey(),
                },
                Sge {
                    addr: src.addr_at(100),
                    length: 16,
                    lkey: src.lkey(),
                },
                Sge {
                    addr: src.addr_at(200),
                    length: 16,
                    lkey: src.lkey(),
                },
            ],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: Some(0),
            inline_data: false,
            flow: 0,
        })
        .unwrap();
    let mut expected = vec![1u8; 16];
    expected.extend_from_slice(&[2u8; 16]);
    expected.extend_from_slice(&[3u8; 16]);
    assert_eq!(dst.read_vec(0, 48).unwrap(), expected);
    assert_eq!(pair.cq_b_recv.poll_one().unwrap().byte_len, 48);
}

#[test]
fn sim_fabric_counts_traffic() {
    let sched = Scheduler::new();
    let fabric = SimFabric::new(sched.clone(), FabricParams::default());
    let pair = setup(Network::new(2, fabric.clone()));
    let payload = vec![7u8; 4096];
    write_with_imm(&pair, &payload, 0);
    sched.run();
    assert_eq!(fabric.total_transfers(), 1);
    assert_eq!(fabric.total_bytes(), 4096);
    assert!(sched.events_executed() >= 2);
}

#[test]
fn pd_mismatch_rejected() {
    let pair = instant_pair();
    // Register under a *different* PD than the QP's.
    let other_pd = pair.a.alloc_pd();
    let src = pair.a.reg_mr(other_pd, 64).unwrap();
    let dst = pair
        .b
        .reg_mr(
            partix_verbs::ProtectionDomain {
                id: pair.qb.pd_id(),
                node: 1,
            },
            64,
        )
        .unwrap();
    let err = pair
        .qa
        .post_send(SendWr {
            wr_id: 0,
            opcode: Opcode::RdmaWrite,
            sg_list: vec![Sge {
                addr: src.addr(),
                length: 8,
                lkey: src.lkey(),
            }],
            remote_addr: dst.addr(),
            rkey: dst.rkey(),
            imm: None,
            inline_data: false,
            flow: 0,
        })
        .unwrap_err();
    assert_eq!(err, VerbsError::ProtectionDomainMismatch);
}
