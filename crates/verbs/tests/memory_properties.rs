//! Property-based tests of memory-region safety: round-trips, bounds, key
//! isolation, and the immediate encoding.

use partix_verbs::{imm, InstantFabric, Network};
use proptest::prelude::*;

proptest! {
    /// write/read round-trips at arbitrary in-bounds offsets; out-of-bounds
    /// access always errors and never corrupts neighbours.
    #[test]
    fn region_round_trip_and_bounds(
        region_len in 1usize..8192,
        offset in 0usize..8192,
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let net = Network::new(1, InstantFabric::new());
        let ctx = net.open(0).unwrap();
        let pd = ctx.alloc_pd();
        let mr = ctx.reg_mr(pd, region_len).unwrap();
        let fits = offset.checked_add(data.len()).is_some_and(|e| e <= region_len);
        let res = mr.write(offset, &data);
        prop_assert_eq!(res.is_ok(), fits);
        if fits {
            prop_assert_eq!(mr.read_vec(offset, data.len()).unwrap(), data.clone());
            // Bytes before the write are untouched (still zero).
            if offset > 0 {
                prop_assert_eq!(mr.read_vec(0, 1).unwrap(), vec![0u8]);
            }
        }
        prop_assert!(mr.read_vec(region_len, 1).is_err());
    }

    /// Distinct regions get distinct, non-adjacent address ranges and
    /// distinct keys; a region's rkey never resolves another's bytes.
    #[test]
    fn regions_are_isolated(sizes in prop::collection::vec(1usize..4096, 2..10)) {
        let net = Network::new(1, InstantFabric::new());
        let ctx = net.open(0).unwrap();
        let pd = ctx.alloc_pd();
        let mrs: Vec<_> = sizes.iter().map(|&s| ctx.reg_mr(pd, s).unwrap()).collect();
        for (i, a) in mrs.iter().enumerate() {
            for (j, b) in mrs.iter().enumerate() {
                if i == j {
                    continue;
                }
                prop_assert_ne!(a.lkey(), b.lkey());
                prop_assert_ne!(a.rkey(), b.rkey());
                // Ranges disjoint (guard pages between).
                let a_end = a.addr() + a.len() as u64;
                let b_end = b.addr() + b.len() as u64;
                prop_assert!(a_end <= b.addr() || b_end <= a.addr());
            }
        }
    }

    /// The immediate encoding is a bijection on (start, count).
    #[test]
    fn imm_encoding_bijective(start in any::<u16>(), count in any::<u16>()) {
        let packed = imm::encode(start, count);
        prop_assert_eq!(imm::decode(packed), (start, count));
    }

    /// Distinct (start, count) pairs produce distinct immediates.
    #[test]
    fn imm_encoding_injective(a in any::<(u16, u16)>(), b in any::<(u16, u16)>()) {
        prop_assert_eq!(
            imm::encode(a.0, a.1) == imm::encode(b.0, b.1),
            a == b
        );
    }

    /// Virtual regions accept any in-bounds access as a no-op and read as
    /// zeroes — identical control flow to real regions.
    #[test]
    fn virtual_regions_mirror_real_bounds(
        region_len in 1usize..4096,
        offset in 0usize..4096,
        len in 0usize..512,
    ) {
        let net = Network::new(1, InstantFabric::new());
        let ctx = net.open(0).unwrap();
        let pd = ctx.alloc_pd();
        let real = ctx.reg_mr(pd, region_len).unwrap();
        let virt = ctx.reg_mr_virtual(pd, region_len).unwrap();
        prop_assert!(!real.is_virtual());
        prop_assert!(virt.is_virtual());
        let data = vec![0xABu8; len];
        prop_assert_eq!(real.write(offset, &data).is_ok(), virt.write(offset, &data).is_ok());
        if virt.write(offset, &data).is_ok() && len > 0 {
            prop_assert_eq!(virt.read_vec(offset, len).unwrap(), vec![0u8; len]);
        }
    }
}
