//! Exhaustive-interleaving model check of the SPSC ring's cursor protocol
//! and the close-drain shutdown handshake.
//!
//! No model-checking framework is vendored, so this is a hand-rolled
//! explicit-state checker: the producer and consumer are decomposed into
//! the same atomic load/store steps the real `SpscRing` performs on its
//! control words, and a memoized DFS enumerates *every* interleaving of
//! those steps under sequential consistency, asserting in each reachable
//! final state that
//!
//! - no published record is lost: when both sides finish, the consumer has
//!   drained exactly the `n` records the producer pushed before closing;
//! - the producer never overcommits: a push accepted against a stale
//!   `Head` still fits, because `Head` only advances (the stale check is
//!   conservative);
//! - the handshake terminates: every reachable state has a successor until
//!   both sides are done (no stuck states).
//!
//! The checker is validated against itself: the *pre-fix* consumer (which
//! returned `Closed` without re-reading `Tail` after observing the close
//! flag) is model-checked too, and the checker must find its lost-record
//! interleaving — the exact race the ring property tests caught on real
//! threads.
//!
//! Bounds: capacities 1–3 records × streams of 1–4 records by default.
//! Setting `RING_PROTOCOL_DEEP=1` widens the bounds (capacity ≤ 4, stream
//! ≤ 6) and raises the concrete-ring stress iterations; the state spaces
//! stay small (tens of thousands of states) because the protocol has so
//! little shared state — that is rather the point of the design.

use std::collections::HashSet;
use std::sync::Arc;

use partix_verbs::shm::{HeapSegment, Popped, SpscRing};

/// Producer program counter: push records 0..n (two steps each: load
/// `Head`, then publish by storing `Tail`), then store `Closed`, then done.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Prod {
    /// About to load `Head` for the space check of record `i`.
    LoadHead { i: u8 },
    /// Loaded `Head` as `h`; about to space-check and publish record `i`.
    Publish { i: u8, h: u8 },
    /// All records published; about to store the close flag.
    Close,
    /// Finished.
    Done,
}

/// Consumer program counter, mirroring `SpscRing::try_pop` step for step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Cons {
    /// About to load `Tail`.
    LoadTail,
    /// Loaded `Tail` as `t`; about to compare against own `Head`.
    Compare { t: u8 },
    /// Saw `t == head`; about to load the close flag.
    LoadClosed,
    /// Saw the close flag set; about to re-read `Tail` (the post-fix
    /// drain step). The buggy variant skips this state entirely.
    Recheck,
    /// Finished (observed `Closed` with nothing left).
    Done,
}

/// One interleaved state of the whole system. `tail`/`head`/`closed` are
/// the shared control words; everything else is thread-local.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct World {
    tail: u8,
    head: u8,
    closed: bool,
    prod: Prod,
    cons: Cons,
    consumed: u8,
}

/// Model parameters: `n` records through a ring holding `cap` records,
/// with or without the close-drain `Recheck` step.
#[derive(Clone, Copy)]
struct Model {
    n: u8,
    cap: u8,
    recheck_on_close: bool,
}

impl Model {
    fn initial(&self) -> World {
        World {
            tail: 0,
            head: 0,
            closed: false,
            prod: Prod::LoadHead { i: 0 },
            cons: Cons::LoadTail,
            consumed: 0,
        }
    }

    /// Producer successor states (at most one: the producer is
    /// deterministic given the shared state it reads).
    fn step_prod(&self, w: World, out: &mut Vec<World>) {
        let mut v = w;
        match w.prod {
            Prod::LoadHead { i } => {
                v.prod = Prod::Publish { i, h: w.head };
                out.push(v);
            }
            Prod::Publish { i, h } => {
                if w.tail - h < self.cap {
                    // Space check passed against a possibly stale head.
                    // The real ring writes the record bytes here; under
                    // sequential consistency the byte copy collapses into
                    // the release store of `Tail`. The overcommit safety
                    // assertion: even with the stale `h`, the record fits
                    // against the *true* head, because head only grows.
                    assert!(
                        w.tail + 1 - w.head <= self.cap,
                        "overcommit: push accepted against stale head {h} \
                         but true occupancy is {}..{} in cap {}",
                        w.head,
                        w.tail + 1,
                        self.cap
                    );
                    v.tail = w.tail + 1;
                    v.prod = if i + 1 < self.n {
                        Prod::LoadHead { i: i + 1 }
                    } else {
                        Prod::Close
                    };
                } else {
                    // Full: spin back to re-read head.
                    v.prod = Prod::LoadHead { i };
                }
                out.push(v);
            }
            Prod::Close => {
                v.closed = true;
                v.prod = Prod::Done;
                out.push(v);
            }
            Prod::Done => {}
        }
    }

    /// Consumer successor states.
    fn step_cons(&self, w: World, out: &mut Vec<World>) {
        let mut v = w;
        match w.cons {
            Cons::LoadTail => {
                v.cons = Cons::Compare { t: w.tail };
                out.push(v);
            }
            Cons::Compare { t } => {
                if t == w.head {
                    v.cons = Cons::LoadClosed;
                } else {
                    // A record is published: consume it and loop.
                    v.head = w.head + 1;
                    v.consumed = w.consumed + 1;
                    v.cons = Cons::LoadTail;
                }
                out.push(v);
            }
            Cons::LoadClosed => {
                if w.closed {
                    v.cons = if self.recheck_on_close {
                        Cons::Recheck
                    } else {
                        Cons::Done
                    };
                } else {
                    v.cons = Cons::LoadTail; // empty, not closed: spin
                }
                out.push(v);
            }
            Cons::Recheck => {
                // The post-fix drain step: re-read Tail after seeing the
                // close flag; records published before the close win.
                if w.tail == w.head {
                    v.cons = Cons::Done;
                } else {
                    v.cons = Cons::LoadTail;
                }
                out.push(v);
            }
            Cons::Done => {}
        }
    }

    /// Explore every interleaving; returns the set of `consumed` counts
    /// observed in final (both-done) states.
    fn check(&self) -> HashSet<u8> {
        let mut seen: HashSet<World> = HashSet::new();
        let mut stack = vec![self.initial()];
        let mut finals = HashSet::new();
        let mut succ = Vec::with_capacity(2);
        while let Some(w) = stack.pop() {
            if !seen.insert(w) {
                continue;
            }
            succ.clear();
            self.step_prod(w, &mut succ);
            self.step_cons(w, &mut succ);
            if succ.is_empty() {
                // Terminal: both sides must be done (no stuck states), and
                // the handshake must not have lost records.
                assert_eq!(w.prod, Prod::Done, "producer stuck in {w:?}");
                assert_eq!(w.cons, Cons::Done, "consumer stuck in {w:?}");
                finals.insert(w.consumed);
            } else {
                stack.extend(succ.iter().copied());
            }
        }
        finals
    }
}

fn deep() -> bool {
    std::env::var("RING_PROTOCOL_DEEP").is_ok_and(|v| v == "1")
}

fn bounds() -> (u8, u8) {
    if deep() {
        (6, 4)
    } else {
        (4, 3)
    }
}

/// Every interleaving of the post-fix protocol delivers the whole stream:
/// the only reachable final consumed-count is `n`, for every bounded
/// (records, capacity) pair.
#[test]
fn close_drain_handshake_loses_nothing_in_any_interleaving() {
    let (max_n, max_cap) = bounds();
    for n in 1..=max_n {
        for cap in 1..=max_cap {
            let finals = Model {
                n,
                cap,
                recheck_on_close: true,
            }
            .check();
            assert_eq!(
                finals,
                HashSet::from([n]),
                "n={n} cap={cap}: some interleaving finished with a \
                 consumed-count other than {n}"
            );
        }
    }
}

/// Checker self-test: the pre-fix consumer (no `Tail` re-read after
/// observing `Closed`) must be caught losing records — there is an
/// interleaving where the producer publishes its suffix and closes
/// between the consumer's `Tail` load and its close-flag load.
#[test]
fn checker_finds_the_prefix_close_race() {
    let finals = Model {
        n: 1,
        cap: 1,
        recheck_on_close: false,
    }
    .check();
    assert!(
        finals.contains(&0),
        "the lost-record interleaving of the buggy protocol was not found \
         (checker too weak): finals={finals:?}"
    );
    assert!(
        finals.contains(&1),
        "the clean interleaving must also be reachable: finals={finals:?}"
    );
}

/// The overcommit-safety assertion inside the model doubles as a proof
/// obligation over all interleavings; this test just makes its coverage
/// explicit for the widest bounded ring.
#[test]
fn stale_head_space_check_never_overcommits() {
    let (max_n, max_cap) = bounds();
    // The assert! inside `step_prod` fires on any violating interleaving.
    let _ = Model {
        n: max_n,
        cap: max_cap,
        recheck_on_close: true,
    }
    .check();
}

/// Concrete counterpart on the real ring: hammer the close-drain
/// handshake with real threads and varying producer/consumer timing.
/// Default 200 rounds; `RING_PROTOCOL_DEEP=1` runs 5000.
#[test]
fn concrete_close_drain_stress() {
    let rounds = if deep() { 5000 } else { 200 };
    for round in 0..rounds {
        let seg = Arc::new(HeapSegment::new(96)); // a few records deep
        let tx = SpscRing::new(seg.clone());
        let rx = SpscRing::new(seg);
        let n = 1 + (round % 7) as u32;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let bytes = i.to_le_bytes();
                while !tx.try_push((i % 251) as u8, &bytes) {
                    std::hint::spin_loop();
                }
                if i % 3 == round as u32 % 3 {
                    std::thread::yield_now(); // vary publish/close timing
                }
            }
            tx.close();
        });
        let mut buf = Vec::new();
        let mut got = 0u32;
        loop {
            match rx.try_pop(&mut buf) {
                Popped::Record(kind) => {
                    assert_eq!(kind, (got % 251) as u8, "round {round}");
                    assert_eq!(buf, got.to_le_bytes(), "round {round}");
                    got += 1;
                }
                Popped::Empty => std::hint::spin_loop(),
                Popped::Closed => break,
            }
        }
        assert_eq!(got, n, "round {round}: close-drain lost records");
        producer.join().expect("producer");
    }
}
