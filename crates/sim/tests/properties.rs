//! Property-based tests of the simulation substrate's core guarantees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use partix_sim::{Scheduler, SerialResource, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events execute in non-decreasing time order regardless of the order
    /// they were scheduled in, and the clock never runs backwards.
    #[test]
    fn scheduler_executes_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for &t in &times {
            let log = log.clone();
            let s2 = sim.clone();
            sim.at(SimTime(t), move || log.lock().push(s2.now().as_nanos()));
        }
        let executed = sim.run();
        prop_assert_eq!(executed as usize, times.len());
        let seen = log.lock().clone();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }

    /// Chained events (each scheduling the next) preserve causality: a
    /// child never executes before its parent.
    #[test]
    fn scheduler_children_after_parents(delays in prop::collection::vec(0u64..1_000, 1..50)) {
        let sim = Scheduler::new();
        let violations = Arc::new(AtomicU64::new(0));
        fn chain(
            sim: Scheduler,
            delays: Arc<Vec<u64>>,
            idx: usize,
            violations: Arc<AtomicU64>,
        ) {
            if idx >= delays.len() {
                return;
            }
            let scheduled_at = sim.now();
            let s2 = sim.clone();
            sim.after(SimDuration(delays[idx]), move || {
                if s2.now() < scheduled_at {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                chain(s2.clone(), delays, idx + 1, violations);
            });
        }
        chain(sim.clone(), Arc::new(delays.clone()), 0, violations.clone());
        sim.run();
        prop_assert_eq!(violations.load(Ordering::Relaxed), 0);
        prop_assert_eq!(sim.now().as_nanos(), delays.iter().sum::<u64>());
    }

    /// The slab-backed queue pops in exact `(time, seq)` order under
    /// arbitrary interleavings of push and pop — the interleaving recycles
    /// slab slots mid-run, so this also checks that slot reuse never
    /// reorders or loses an event. Each scheduled closure logs its own
    /// sequence number; a reference heap of `(clamped_time, seq)` pairs
    /// predicts the exact ordering.
    #[test]
    fn slab_heap_pops_in_time_seq_order(
        ops in prop::collection::vec(prop::option::of(0u64..1_000), 1..300)
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut expected = Vec::new();
        let mut next_seq = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    // Mirror the scheduler's clamp-to-now rule for events
                    // scheduled in the past.
                    let clamped = t.max(sim.now().as_nanos());
                    model.push(Reverse((clamped, next_seq)));
                    let log = log.clone();
                    let seq = next_seq;
                    sim.at(SimTime(t), move || log.lock().push(seq));
                    next_seq += 1;
                }
                None => {
                    let stepped = sim.step();
                    match model.pop() {
                        Some(Reverse((_, seq))) => {
                            prop_assert!(stepped, "scheduler empty but model was not");
                            expected.push(seq);
                        }
                        None => prop_assert!(!stepped, "scheduler popped from empty model"),
                    }
                }
            }
        }
        // Drain the rest; the batched path must agree with the model too.
        sim.run();
        while let Some(Reverse((_, seq))) = model.pop() {
            expected.push(seq);
        }
        prop_assert_eq!(log.lock().clone(), expected);
        prop_assert_eq!(sim.events_pending(), 0);
    }

    /// Serial resources never overlap reservations and never shrink
    /// durations: granted intervals are disjoint, FIFO, and each has the
    /// requested length.
    #[test]
    fn serial_resource_grants_disjoint_fifo_intervals(
        requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let r = SerialResource::new();
        let mut prev_end = 0u64;
        let mut arrival = 0u64;
        for &(gap, dur) in &requests {
            arrival += gap;
            let (start, end) = r.reserve(SimTime(arrival), SimDuration(dur));
            prop_assert!(start.as_nanos() >= arrival, "started before arrival");
            prop_assert!(start.as_nanos() >= prev_end, "overlapped previous grant");
            prop_assert_eq!(end.as_nanos() - start.as_nanos(), dur);
            prev_end = end.as_nanos();
        }
        prop_assert_eq!(r.reservations(), requests.len() as u64);
        prop_assert_eq!(
            r.busy_total().as_nanos(),
            requests.iter().map(|(_, d)| d).sum::<u64>()
        );
    }

    /// The resource's utilisation never exceeds 100%: total busy time fits
    /// within [first start, last end].
    #[test]
    fn serial_resource_utilisation_bounded(
        requests in prop::collection::vec((0u64..1_000, 1u64..100), 2..50)
    ) {
        let r = SerialResource::new();
        let mut first_start = None;
        let mut last_end = 0;
        let mut arrival = 0u64;
        for &(gap, dur) in &requests {
            arrival += gap;
            let (s, e) = r.reserve(SimTime(arrival), SimDuration(dur));
            first_start.get_or_insert(s.as_nanos());
            last_end = e.as_nanos();
        }
        let span = last_end - first_start.unwrap();
        prop_assert!(r.busy_total().as_nanos() <= span);
    }
}
