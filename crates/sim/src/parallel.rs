//! Order-preserving parallel fan-out across worker threads.
//!
//! [`par_map`] is the one primitive the experiment harnesses and the
//! sharded PDES engine share: a parallel map over owned items, fanned out
//! across scoped worker threads pulling from a shared atomic work index (so
//! uneven item costs still balance), with output order matching input
//! order. Callers that hand it independent, separately seeded simulations
//! get byte-identical results at any job count; the PDES engine hands it
//! one shard group per worker and synchronises epochs with a barrier
//! internally (see [`crate::pdes`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default worker count: the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `jobs` worker threads, preserving input
/// order in the output. `jobs <= 1` (or a single item) degenerates to a
/// plain serial map with no threads spawned. Workers claim items through a
/// shared counter, so long and short cells interleave instead of being
/// dealt out in fixed blocks. A panic in `f` propagates to the caller.
///
/// Exactly `min(jobs, items.len())` workers are spawned. A caller whose
/// items rendezvous with each other (e.g. through a
/// [`std::sync::Barrier`]) may therefore rely on every item being claimed
/// by a distinct live worker **only** when `items.len() <= jobs` — the
/// PDES epoch loop passes exactly one shard group per worker for this
/// reason.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand each item to exactly one worker via take(), and collect results
    // back into per-index slots so output order matches input order.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let (f, work, results, next) = (&f, &work, &results, &next);
        for _ in 0..jobs {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().take().expect("item claimed once");
                *results[i].lock() = Some(f(item));
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map(4, (0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial = par_map(1, items.clone(), f);
        let parallel = par_map(8, items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(8, empty, |x: u8| x).is_empty());
        assert_eq!(par_map(8, vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(par_map(64, vec![1, 2, 3], |x: i32| -x), vec![-1, -2, -3]);
    }

    // `std::thread::scope` re-raises worker panics with its own payload.
    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        par_map(2, vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("cell failed");
            }
            x
        });
    }
}
