//! Serial (FIFO) resources for modelling contended hardware.
//!
//! A [`SerialResource`] represents something that can do one thing at a time:
//! a QP's DMA engine, a node's egress link, a lock-protected software path.
//! Callers *reserve* an occupancy interval; the resource hands back the actual
//! start/end after queueing behind earlier reservations. Because the
//! simulation executes events in time order, reservation order matches
//! virtual-time arrival order, which yields FIFO semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use partix_telemetry::{SpanEvent, SpanLog};

use crate::time::{SimDuration, SimTime};

/// Where a traced resource's busy intervals go, plus its trace identity.
struct SpanSink {
    log: Arc<SpanLog>,
    name: Arc<str>,
    pid: u32,
    tid: u32,
}

/// A FIFO, one-at-a-time resource on the virtual timeline.
pub struct SerialResource {
    free_at: Mutex<SimTime>,
    busy_total: AtomicU64,
    reservations: AtomicU64,
    /// Set at most once, when tracing is enabled. The untraced hot path
    /// pays a single relaxed load per reservation.
    span: OnceLock<SpanSink>,
}

impl SerialResource {
    /// A resource that is free from t = 0.
    pub fn new() -> Self {
        SerialResource {
            free_at: Mutex::new(SimTime::ZERO),
            busy_total: AtomicU64::new(0),
            reservations: AtomicU64::new(0),
            span: OnceLock::new(),
        }
    }

    /// Start recording this resource's busy intervals as chrome-trace spans
    /// into `log`, labelled `name` on lane `(pid, tid)`. Returns false (and
    /// changes nothing) if a span sink was already attached. Accepts an
    /// `Arc<str>` so callers that precompute resource names attach them with
    /// a refcount bump, not a fresh allocation.
    pub fn attach_span_log(
        &self,
        log: Arc<SpanLog>,
        name: impl Into<Arc<str>>,
        pid: u32,
        tid: u32,
    ) -> bool {
        self.span
            .set(SpanSink {
                log,
                name: name.into(),
                pid,
                tid,
            })
            .is_ok()
    }

    /// Reserve the resource for `dur`, starting no earlier than `earliest`.
    /// Returns the actual `(start, end)` interval granted.
    pub fn reserve(&self, earliest: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let mut free = self.free_at.lock();
        let start = (*free).max(earliest);
        let end = start + dur;
        *free = end;
        self.busy_total.fetch_add(dur.as_nanos(), Ordering::Relaxed);
        self.reservations.fetch_add(1, Ordering::Relaxed);
        drop(free);
        if let Some(sink) = self.span.get() {
            sink.log.record(SpanEvent {
                name: sink.name.clone(),
                cat: "resource",
                pid: sink.pid,
                tid: sink.tid,
                ts_ns: start.as_nanos(),
                dur_ns: dur.as_nanos(),
            });
        }
        (start, end)
    }

    /// Earliest instant at which a new reservation could start.
    pub fn free_at(&self) -> SimTime {
        *self.free_at.lock()
    }

    /// Total busy time accumulated (for utilisation reporting).
    pub fn busy_total(&self) -> SimDuration {
        SimDuration(self.busy_total.load(Ordering::Relaxed))
    }

    /// Number of reservations granted.
    pub fn reservations(&self) -> u64 {
        self.reservations.load(Ordering::Relaxed)
    }

    /// Reset to the initial (free-at-zero) state. Used between benchmark
    /// rounds that restart the virtual clock.
    pub fn reset(&self) {
        *self.free_at.lock() = SimTime::ZERO;
        self.busy_total.store(0, Ordering::Relaxed);
        self.reservations.store(0, Ordering::Relaxed);
    }
}

impl Default for SerialResource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_queue() {
        let r = SerialResource::new();
        let (s1, e1) = r.reserve(SimTime(10), SimDuration(100));
        assert_eq!((s1, e1), (SimTime(10), SimTime(110)));
        // Arrives while busy: queued.
        let (s2, e2) = r.reserve(SimTime(50), SimDuration(10));
        assert_eq!((s2, e2), (SimTime(110), SimTime(120)));
        // Arrives after idle gap: starts at arrival.
        let (s3, e3) = r.reserve(SimTime(500), SimDuration(1));
        assert_eq!((s3, e3), (SimTime(500), SimTime(501)));
    }

    #[test]
    fn accounting() {
        let r = SerialResource::new();
        r.reserve(SimTime(0), SimDuration(5));
        r.reserve(SimTime(0), SimDuration(7));
        assert_eq!(r.busy_total(), SimDuration(12));
        assert_eq!(r.reservations(), 2);
        assert_eq!(r.free_at(), SimTime(12));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.reservations(), 0);
    }

    #[test]
    fn zero_duration_reservation_is_ordering_only() {
        let r = SerialResource::new();
        r.reserve(SimTime(100), SimDuration(0));
        let (s, e) = r.reserve(SimTime(0), SimDuration(10));
        // Queued behind the zero-length hold point.
        assert_eq!((s, e), (SimTime(100), SimTime(110)));
    }
}
