//! Virtual time types.
//!
//! All simulation time is kept as unsigned nanoseconds. `SimTime` is an
//! absolute instant on the virtual clock, `SimDuration` a span between two
//! instants. Both are thin `u64` newtypes so they are free to copy and can be
//! stored in atomics where needed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the virtual clock, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as floating-point milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as floating-point seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, since measurement races in real-time mode can observe a
    /// slightly earlier "now".
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point nanoseconds, rounding to the nearest
    /// whole nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        SimDuration(ns.max(0.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as floating-point microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span as floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(4).as_nanos(), 4_000_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimDuration(1) + SimDuration(2), SimDuration(3));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), SimDuration(0));
        assert_eq!(SimTime(10).saturating_since(SimTime(5)), SimDuration(5));
    }

    #[test]
    fn from_nanos_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_nanos_f64(1.6).as_nanos(), 2);
        assert_eq!(SimDuration::from_nanos_f64(-4.0).as_nanos(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration(999)), "999ns");
        assert_eq!(format!("{}", SimDuration(1_500)), "1.500us");
        assert_eq!(format!("{}", SimDuration(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", SimDuration(3_000_000_000)), "3.000s");
    }

    #[test]
    fn float_views() {
        let d = SimDuration::from_micros(1_500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
        let t = SimTime(2_000);
        assert!((t.as_micros_f64() - 2.0).abs() < 1e-12);
    }
}
