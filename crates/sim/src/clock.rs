//! Clock and timer abstractions.
//!
//! The MPI runtime is written against these traits so the same code runs on
//! the virtual clock (benchmarks, figures) and on wall-clock time (examples,
//! multi-threaded tests). `SimClock`/`SimTimer` are backed by a
//! [`Scheduler`]; `RealClock`/`ThreadTimer` use `std::time` and spawned
//! threads.

use std::sync::Arc;
use std::time::Instant;

use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};

/// Source of "now". Implementations must be monotonic.
pub trait Clock: Send + Sync {
    /// Current time.
    fn now(&self) -> SimTime;
}

/// One-shot delayed callbacks.
pub trait Timer: Send + Sync {
    /// Run `f` once, `delay` from now. Used by the timer-based aggregator for
    /// its delta-expiry flush.
    fn schedule(&self, delay: SimDuration, f: Box<dyn FnOnce() + Send>);

    /// Like [`schedule`](Self::schedule), tagging the callback with the
    /// simulated node it belongs to. Timer backends without a node concept
    /// (wall-clock) ignore the tag; the virtual clock routes it through
    /// [`Scheduler::at_node`] so delta-timers and recv-path delays stay on
    /// their owning shard under the sharded PDES engine.
    fn schedule_on(&self, node: u32, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        let _ = node;
        self.schedule(delay, f);
    }
}

/// Virtual clock view over a [`Scheduler`].
#[derive(Clone)]
pub struct SimClock(pub Scheduler);

impl Clock for SimClock {
    #[inline]
    fn now(&self) -> SimTime {
        self.0.now()
    }
}

impl Timer for SimClock {
    fn schedule(&self, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        self.0.after(delay, f);
    }

    fn schedule_on(&self, node: u32, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        let at = self.0.now() + delay;
        self.0.at_node(node, at, f);
    }
}

/// Wall-clock time relative to construction.
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose zero is "now".
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.origin.elapsed().as_nanos() as u64)
    }
}

/// Timer that spawns a short-lived sleeper thread per callback. Adequate for
/// examples and tests; the hot benchmarking paths all use `SimClock`.
pub struct ThreadTimer;

impl Timer for ThreadTimer {
    fn schedule(&self, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_nanos(delay.as_nanos()));
            f();
        });
    }
}

/// A clock+timer pair bundled for dependency injection.
#[derive(Clone)]
pub struct TimeSource {
    clock: Arc<dyn Clock>,
    timer: Arc<dyn Timer>,
}

impl TimeSource {
    /// Virtual time source driven by `sched`.
    pub fn simulated(sched: &Scheduler) -> Self {
        let c = Arc::new(SimClock(sched.clone()));
        TimeSource {
            clock: c.clone(),
            timer: c,
        }
    }

    /// Wall-clock time source.
    pub fn real() -> Self {
        TimeSource {
            clock: Arc::new(RealClock::new()),
            timer: Arc::new(ThreadTimer),
        }
    }

    /// Current time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Schedule a one-shot callback.
    pub fn schedule(&self, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        self.timer.schedule(delay, f);
    }

    /// Schedule a one-shot callback owned by simulated node `node` (see
    /// [`Timer::schedule_on`]).
    pub fn schedule_on(&self, node: u32, delay: SimDuration, f: Box<dyn FnOnce() + Send>) {
        self.timer.schedule_on(node, delay, f);
    }

    /// The clock as a plain nanosecond closure, for injection into layers
    /// that must stay independent of this crate (e.g. the telemetry flow
    /// recorder). Reads the same underlying clock as [`TimeSource::now`],
    /// so stamps agree with virtual time under the simulator.
    pub fn ns_hook(&self) -> Arc<dyn Fn() -> u64 + Send + Sync> {
        let clock = self.clock.clone();
        Arc::new(move || clock.now().as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn sim_clock_tracks_scheduler() {
        let sched = Scheduler::new();
        let ts = TimeSource::simulated(&sched);
        assert_eq!(ts.now(), SimTime(0));
        sched.at(SimTime(500), || {});
        sched.run();
        assert_eq!(ts.now(), SimTime(500));
    }

    #[test]
    fn sim_timer_schedules_on_queue() {
        let sched = Scheduler::new();
        let ts = TimeSource::simulated(&sched);
        let fired = Arc::new(AtomicBool::new(false));
        let f2 = fired.clone();
        ts.schedule(
            SimDuration::from_micros(7),
            Box::new(move || f2.store(true, Ordering::Relaxed)),
        );
        assert!(!fired.load(Ordering::Relaxed));
        sched.run();
        assert!(fired.load(Ordering::Relaxed));
        assert_eq!(sched.now(), SimTime(7_000));
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn thread_timer_fires() {
        let ts = TimeSource::real();
        let fired = Arc::new(AtomicBool::new(false));
        let f2 = fired.clone();
        ts.schedule(
            SimDuration::from_micros(100),
            Box::new(move || f2.store(true, Ordering::Release)),
        );
        // Wait generously.
        for _ in 0..1_000 {
            if fired.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("timer did not fire within 1s");
    }
}
