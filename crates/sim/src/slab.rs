//! A recycling slot arena shared by the event schedulers.
//!
//! This is the PR 1 event-pool design factored out of the sequential
//! scheduler so the sharded PDES engine reuses the same storage discipline:
//! occupied slots hold payloads, freed slots chain onto an intrusive free
//! list and are reused, so capacity climbs to a high-water mark and stays
//! there. Heaps then order small `Copy` index records instead of sifting
//! fat payloads.

pub(crate) const NIL: u32 = u32::MAX;

enum Slot<T> {
    Vacant { next_free: u32 },
    Occupied(T),
}

/// Recycling arena of `T` slots addressed by dense `u32` indices.
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
}

impl<T> Slab<T> {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(n),
            free_head: NIL,
        }
    }

    /// Store `value`, preferring a recycled slot over fresh growth.
    pub(crate) fn insert(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            match std::mem::replace(&mut self.slots[idx as usize], Slot::Occupied(value)) {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied(_) => unreachable!("free list pointed at an occupied slot"),
            }
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "event slab exhausted");
            self.slots.push(Slot::Occupied(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Remove and return the payload at `idx`, returning the slot to the
    /// free list.
    pub(crate) fn take(&mut self, idx: u32) -> T {
        let vacant = Slot::Vacant {
            next_free: self.free_head,
        };
        match std::mem::replace(&mut self.slots[idx as usize], vacant) {
            Slot::Occupied(v) => {
                self.free_head = idx;
                v
            }
            Slot::Vacant { .. } => unreachable!("heap entry pointed at a vacant slot"),
        }
    }

    /// High-water mark: how many slots have ever been live at once.
    pub(crate) fn high_water(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle() {
        let mut s: Slab<u64> = Slab::with_capacity(2);
        let a = s.insert(1);
        let b = s.insert(2);
        assert_eq!(s.take(a), 1);
        let c = s.insert(3);
        assert_eq!(c, a, "freed slot must be reused");
        assert_eq!(s.take(b), 2);
        assert_eq!(s.take(c), 3);
        assert_eq!(s.high_water(), 2);
    }
}
