//! Seedable randomness plumbing.
//!
//! Every stochastic element of an experiment (noise draws, laggard selection)
//! derives from one root seed through stable stream splitting, so a run is
//! reproducible from `(root_seed, experiment parameters)` alone.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed for a named stream. Uses an FNV-1a style mix so that
/// distinct `(seed, stream, index)` triples map to well-spread seeds without
/// pulling in a hashing dependency.
pub fn split_seed(root: u64, stream: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in root.to_le_bytes() {
        mix(b);
    }
    for b in stream.as_bytes() {
        mix(*b);
    }
    for b in index.to_le_bytes() {
        mix(b);
    }
    // Final avalanche (splitmix64 finaliser).
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for the given stream of an experiment.
pub fn stream_rng(root: u64, stream: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(root, stream, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_seed(1, "noise", 0), split_seed(1, "noise", 0));
    }

    #[test]
    fn split_separates_streams() {
        let a = split_seed(1, "noise", 0);
        let b = split_seed(1, "laggard", 0);
        let c = split_seed(1, "noise", 1);
        let d = split_seed(2, "noise", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn rngs_reproduce() {
        let mut r1 = stream_rng(42, "x", 7);
        let mut r2 = stream_rng(42, "x", 7);
        let a: [u64; 4] = std::array::from_fn(|_| r1.random());
        let b: [u64; 4] = std::array::from_fn(|_| r2.random());
        assert_eq!(a, b);
    }
}
