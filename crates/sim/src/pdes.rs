//! Sharded parallel discrete-event simulation with conservative
//! synchronisation.
//!
//! The sequential [`Scheduler`](crate::Scheduler) tops out at one core: a
//! single global heap serialises every event in the simulation. This module
//! is the scale substrate: simulated nodes are partitioned across
//! **shards**, each shard owns a private event queue (the same slab +
//! index-min-heap layout as the sequential scheduler), and shards advance
//! in parallel under a **conservative barrier-epoch protocol** whose safety
//! window comes from the physical lookahead of the modelled network — a
//! cross-shard event (a wire delivery) can never be due sooner than the
//! LogGP link latency after the instant that produced it.
//!
//! # Protocol
//!
//! Each epoch performs two barrier-separated phases:
//!
//! 1. **merge + publish**: every shard drains its inbound mailbox (messages
//!    sent during the previous epoch), sorted into the deterministic merge
//!    order, and publishes the timestamp of its earliest pending event;
//! 2. **advance**: every shard computes the global lower bound `lbts` from
//!    the published minima and executes all of its events strictly before
//!    `lbts + lookahead`, routing cross-shard sends into the destination
//!    mailboxes.
//!
//! The window is safe because any message produced in phase 2 is stamped at
//! or after `lbts` and delivered at least `lookahead` later, i.e. at or
//! after the horizon — never inside the window being executed.
//!
//! # Determinism
//!
//! Results are **byte-identical at any worker count**, and identical to the
//! sequential reference executor ([`Pdes::run_reference`]), because the
//! execution order is a pure function of the event population, never of
//! thread timing:
//!
//! - every event has a unique [`ShardKey`] `(time, shard, seq)` and each
//!   shard executes its own events in ascending key order;
//! - `seq` is split into two lanes: locally scheduled events take even
//!   sequence numbers in scheduling order, merged cross-shard deliveries
//!   take odd ones in the **merge order** `(send_time, src_shard,
//!   src_msg_seq)` — exactly the order in which the sequential reference
//!   executor (which runs events one at a time in global `(time, shard,
//!   seq)` order and merges immediately) performs the same insertions;
//! - shards share no mutable state: cross-shard interaction happens only
//!   through the mailboxes, which are drained at barriers and sorted before
//!   insertion, erasing the nondeterministic arrival interleaving.
//!
//! The epoch structure itself is thread-count-independent (it depends only
//! on event timestamps and the lookahead), so shard count — not job
//! count — is the only topology input to the result. Hold `shards` fixed
//! and `--jobs N` may only change wall-clock time.
//!
//! # Memory discipline
//!
//! The cross-shard channel path performs **zero steady-state allocations**:
//! mailboxes are preallocated to [`PdesConfig::channel_capacity`] and
//! swapped (not reallocated) at merge time, local queues reuse the PR 1
//! slab/arena event pool (the crate-private `Slab`), and the merge sort is
//! an in-place `sort_unstable`. `tests/pdes_alloc.rs` pins this with a
//! counting allocator.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use parking_lot::Mutex;

use crate::parallel::par_map;
use crate::slab::Slab;
use crate::time::{SimDuration, SimTime};

/// Simulated node identifier. Shards own disjoint node sets; every event is
/// addressed to a node and executes on the shard owning it.
pub type PdesNode = u32;

/// The sharded engine's **public total order**: events execute in ascending
/// `(time, shard, seq)` order. `shard` is the executing (owning) shard;
/// `seq` is unique within a shard, with locally scheduled events on the
/// even lane and merged cross-shard deliveries on the odd lane (see the
/// module docs for why the two lanes are deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardKey {
    /// Virtual execution instant.
    pub time: SimTime,
    /// Executing shard.
    pub shard: u32,
    /// Per-shard sequence number (even = local lane, odd = merge lane).
    pub seq: u64,
}

/// Static node→shard assignment: node `n` lives on shard `n % shards`.
/// Striping spreads spatially contiguous hot regions (a wavefront diagonal,
/// a fan-in level) across shards for balance.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` shards.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardMap { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Owning shard of `node`.
    #[inline]
    pub fn shard_of(&self, node: PdesNode) -> u32 {
        node % self.shards
    }

    /// Dense index of `node` within its owning shard's local storage.
    #[inline]
    pub fn local_index(&self, node: PdesNode) -> usize {
        (node / self.shards) as usize
    }
}

/// Engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct PdesConfig {
    /// Number of shards. Fixed per simulation: it participates in the
    /// deterministic total order, so changing it (unlike changing `--jobs`)
    /// is a different experiment.
    pub shards: u32,
    /// Conservative lookahead: the minimum latency of any cross-shard
    /// event. Physically, the LogGP wire latency `L` — no delivery can
    /// outrun the link. Must be positive, or no epoch could make progress.
    pub lookahead: SimDuration,
    /// Preallocated capacity (messages) of each shard's inbound mailbox.
    /// A soft bound: exceeding it is counted, not fatal, and shows up in
    /// [`PdesReport::channel_overflows`] as a sizing diagnostic.
    pub channel_capacity: usize,
    /// Preallocated per-shard event-queue capacity (heap entries and slab
    /// slots).
    pub event_capacity: usize,
}

impl Default for PdesConfig {
    fn default() -> Self {
        PdesConfig {
            shards: 16,
            lookahead: SimDuration::from_nanos(1),
            channel_capacity: 1024,
            event_capacity: 1024,
        }
    }
}

/// Per-shard model logic. One value of the implementing type exists per
/// shard, owns the state of every node mapped to that shard, and is driven
/// exclusively from that shard's event loop — `&mut self` access without
/// locks, on one thread at a time.
pub trait ShardLogic: Send {
    /// Event payload. Kept small and heap-free by well-behaved models: it
    /// is stored inline in the slab and in mailbox entries.
    type Event: Send;

    /// Execute one event addressed to `node` (owned by this shard) at
    /// virtual time `ctx.now()`. Follow-up events are scheduled through
    /// `ctx`.
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event>, node: PdesNode, ev: Self::Event);
}

/// Heap record of one pending event on a shard: ordering fields plus the
/// slab slot and destination node. `Copy`, 24 bytes.
#[derive(Clone, Copy)]
struct LocalEntry {
    time: SimTime,
    seq: u64,
    node: PdesNode,
    slot: u32,
}

impl PartialEq for LocalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for LocalEntry {}
impl PartialOrd for LocalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for LocalEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed so BinaryHeap pops the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One cross-shard message in flight. Carries the sender-side identity that
/// defines the deterministic merge order at the destination.
struct WireMsg<E> {
    send_time: SimTime,
    src_shard: u32,
    src_msg_seq: u64,
    deliver_at: SimTime,
    dst_node: PdesNode,
    ev: E,
}

/// Bounded inbound channel of one shard. Senders append under a mutex
/// during the advance phase; the owner swaps the buffer out at the next
/// merge phase, so the backing storage is reused for the whole run.
struct Mailbox<E> {
    q: Mutex<Vec<WireMsg<E>>>,
    capacity: usize,
    high_water: AtomicUsize,
    overflows: AtomicU64,
}

impl<E> Mailbox<E> {
    fn with_capacity(capacity: usize) -> Self {
        Mailbox {
            q: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            high_water: AtomicUsize::new(0),
            overflows: AtomicU64::new(0),
        }
    }

    fn push(&self, msg: WireMsg<E>) {
        let mut q = self.q.lock();
        q.push(msg);
        let len = q.len();
        drop(q);
        self.high_water.fetch_max(len, Ordering::Relaxed);
        if len > self.capacity {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Scheduling context handed to [`ShardLogic::handle`] for the duration of
/// one event.
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: u32,
    map: ShardMap,
    lookahead: SimDuration,
    heap: &'a mut BinaryHeap<LocalEntry>,
    slab: &'a mut Slab<E>,
    local_ctr: &'a mut u64,
    out_msg_ctr: &'a mut u64,
    sent_cross: &'a mut u64,
    mailboxes: &'a [Mailbox<E>],
}

impl<E> ShardCtx<'_, E> {
    /// Virtual time of the executing event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The executing shard.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The node→shard map in force.
    #[inline]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Schedule `ev` for `node` at `now + delay`. Same-shard targets accept
    /// any delay (including zero); cross-shard targets must respect the
    /// lookahead — see [`send_at`](Self::send_at).
    #[inline]
    pub fn send(&mut self, node: PdesNode, delay: SimDuration, ev: E) {
        self.send_at(node, self.now + delay, ev);
    }

    /// Schedule `ev` for `node` at absolute time `at` (clamped to now).
    ///
    /// # Panics
    ///
    /// If `node` lives on another shard and `at < now + lookahead`: such an
    /// event could land inside a window another shard is already executing,
    /// which would break conservative synchronisation — the model's minimum
    /// cross-node latency must be declared as the engine's lookahead.
    pub fn send_at(&mut self, node: PdesNode, at: SimTime, ev: E) {
        let at = at.max(self.now);
        let dst = self.map.shard_of(node);
        if dst == self.shard {
            *self.local_ctr += 1;
            let seq = *self.local_ctr << 1;
            let slot = self.slab.insert(ev);
            self.heap.push(LocalEntry {
                time: at,
                seq,
                node,
                slot,
            });
        } else {
            assert!(
                at >= self.now + self.lookahead,
                "cross-shard event to node {node} at {at:?} violates lookahead {:?} (now {:?}): \
                 the model's minimum cross-node latency must be >= PdesConfig::lookahead",
                self.lookahead,
                self.now,
            );
            *self.out_msg_ctr += 1;
            *self.sent_cross += 1;
            self.mailboxes[dst as usize].push(WireMsg {
                send_time: self.now,
                src_shard: self.shard,
                src_msg_seq: *self.out_msg_ctr,
                deliver_at: at,
                dst_node: node,
                ev,
            });
        }
    }
}

/// Aggregate outcome of a run. The first three fields are part of the
/// deterministic result (identical across job counts and executors); the
/// rest are execution diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesReport {
    /// Events executed.
    pub events: u64,
    /// Cross-shard messages carried.
    pub cross_messages: u64,
    /// Timestamp of the last executed event.
    pub makespan: SimTime,
    /// Barrier epochs performed (0 for the reference executor).
    pub epochs: u64,
    /// Peak occupancy of any inter-shard mailbox.
    pub channel_high_water: usize,
    /// Messages pushed while a mailbox was beyond its soft capacity bound.
    pub channel_overflows: u64,
    /// Peak live slots of any shard's event slab.
    pub slab_high_water: usize,
}

impl PdesReport {
    /// The fields every executor and job count must reproduce exactly.
    pub fn deterministic_parts(&self) -> (u64, u64, u64) {
        (self.events, self.cross_messages, self.makespan.as_nanos())
    }
}

/// One epoch boundary as seen by the [`EpochHook`]: the state every
/// executor passes through between safe windows. All three fields are
/// deterministic — they depend only on the event population and the
/// lookahead, never on job count (the reference executor reports the same
/// sequence by emulating the window structure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochObservation {
    /// Epoch number within this run, starting at 1.
    pub epoch: u64,
    /// The global lower bound on pending event time at the boundary.
    pub lbts: SimTime,
    /// The window that was just executed ended strictly before this.
    pub horizon: SimTime,
}

/// Callback fired after each epoch's advance phase completes, while no
/// events are in flight (on the parallel executor the barrier leader fires
/// it; the other workers are blocked or merging mailboxes — which executes
/// no model code — until it returns). Used to drive telemetry samplers at
/// deterministic instants.
pub type EpochHook = Arc<dyn Fn(&EpochObservation) + Send + Sync>;

/// Per-shard execution diagnostics, for load-imbalance analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesShardStat {
    /// Shard id.
    pub shard: u32,
    /// Events this shard executed.
    pub events: u64,
    /// Cross-shard messages this shard sent.
    pub sent_cross: u64,
    /// Peak occupancy of this shard's inbound mailbox.
    pub mailbox_high_water: usize,
    /// Pushes into this shard's mailbox beyond its soft capacity bound.
    pub mailbox_overflows: u64,
    /// Peak live slots of this shard's event slab.
    pub slab_high_water: usize,
}

/// Load-imbalance ratio over per-shard event counts: max over mean, `1.0`
/// for perfect balance, `0.0` when no events ran.
pub fn imbalance_ratio(stats: &[PdesShardStat]) -> f64 {
    let total: u64 = stats.iter().map(|s| s.events).sum();
    if total == 0 || stats.is_empty() {
        return 0.0;
    }
    let max = stats.iter().map(|s| s.events).max().unwrap_or(0) as f64;
    max / (total as f64 / stats.len() as f64)
}

struct ShardCell<L: ShardLogic> {
    id: u32,
    logic: L,
    heap: BinaryHeap<LocalEntry>,
    slab: Slab<L::Event>,
    /// Local-lane counter (even seqs).
    local_ctr: u64,
    /// Merge-lane counter (odd seqs), bumped as inbound messages merge.
    in_msg_ctr: u64,
    /// Stamp counter for outgoing cross-shard messages.
    out_msg_ctr: u64,
    /// Reused drain/sort buffer for mailbox merging.
    scratch: Vec<WireMsg<L::Event>>,
    executed: u64,
    sent_cross: u64,
    last_time: SimTime,
}

impl<L: ShardLogic> ShardCell<L> {
    fn new(id: u32, logic: L, cfg: &PdesConfig) -> Self {
        ShardCell {
            id,
            logic,
            heap: BinaryHeap::with_capacity(cfg.event_capacity),
            slab: Slab::with_capacity(cfg.event_capacity),
            local_ctr: 0,
            in_msg_ctr: 0,
            out_msg_ctr: 0,
            scratch: Vec::with_capacity(cfg.channel_capacity),
            executed: 0,
            sent_cross: 0,
            last_time: SimTime::ZERO,
        }
    }

    fn push_local(&mut self, at: SimTime, node: PdesNode, ev: L::Event) {
        self.local_ctr += 1;
        let seq = self.local_ctr << 1;
        let slot = self.slab.insert(ev);
        self.heap.push(LocalEntry {
            time: at,
            seq,
            node,
            slot,
        });
    }

    /// Drain this shard's mailbox into the local queue in the deterministic
    /// merge order `(send_time, src_shard, src_msg_seq)`.
    fn merge_inbox(&mut self, mailbox: &Mailbox<L::Event>) {
        {
            let mut q = mailbox.q.lock();
            if q.is_empty() {
                return;
            }
            std::mem::swap(&mut *q, &mut self.scratch);
        }
        self.scratch
            .sort_unstable_by_key(|m| (m.send_time, m.src_shard, m.src_msg_seq));
        for m in self.scratch.drain(..) {
            self.in_msg_ctr += 1;
            let seq = (self.in_msg_ctr << 1) | 1;
            let slot = self.slab.insert(m.ev);
            self.heap.push(LocalEntry {
                time: m.deliver_at,
                seq,
                node: m.dst_node,
                slot,
            });
        }
    }

    /// Earliest pending event time, `u64::MAX` when idle.
    fn next_time_ns(&self) -> u64 {
        self.heap
            .peek()
            .map(|e| e.time.as_nanos())
            .unwrap_or(u64::MAX)
    }

    /// Execute every pending event strictly before `horizon`, including
    /// same-window events scheduled along the way.
    fn run_until(
        &mut self,
        horizon: SimTime,
        map: ShardMap,
        lookahead: SimDuration,
        mailboxes: &[Mailbox<L::Event>],
    ) {
        let ShardCell {
            id,
            logic,
            heap,
            slab,
            local_ctr,
            out_msg_ctr,
            executed,
            sent_cross,
            last_time,
            ..
        } = self;
        while let Some(top) = heap.peek().copied() {
            if top.time >= horizon {
                break;
            }
            heap.pop();
            let ev = slab.take(top.slot);
            *executed += 1;
            *last_time = top.time;
            let mut ctx = ShardCtx {
                now: top.time,
                shard: *id,
                map,
                lookahead,
                heap,
                slab,
                local_ctr,
                out_msg_ctr,
                sent_cross,
                mailboxes,
            };
            logic.handle(&mut ctx, top.node, ev);
        }
    }

    /// Execute exactly the next pending event (reference executor).
    fn step_one(&mut self, map: ShardMap, lookahead: SimDuration, mailboxes: &[Mailbox<L::Event>]) {
        let ShardCell {
            id,
            logic,
            heap,
            slab,
            local_ctr,
            out_msg_ctr,
            executed,
            sent_cross,
            last_time,
            ..
        } = self;
        let top = heap.pop().expect("step_one on an idle shard");
        let ev = slab.take(top.slot);
        *executed += 1;
        *last_time = top.time;
        let mut ctx = ShardCtx {
            now: top.time,
            shard: *id,
            map,
            lookahead,
            heap,
            slab,
            local_ctr,
            out_msg_ctr,
            sent_cross,
            mailboxes,
        };
        logic.handle(&mut ctx, top.node, ev);
    }
}

/// The sharded conservative-sync engine. Single-shot: build, [`seed`]
/// initial events, then call exactly one of [`run`](Pdes::run) /
/// [`run_reference`](Pdes::run_reference), and harvest final model state
/// with [`into_logics`](Pdes::into_logics).
///
/// [`seed`]: Pdes::seed
pub struct Pdes<L: ShardLogic> {
    cfg: PdesConfig,
    map: ShardMap,
    cells: Vec<ShardCell<L>>,
    mailboxes: Vec<Mailbox<L::Event>>,
    epoch_hook: Option<EpochHook>,
    /// Cumulative wall time workers spent blocked on epoch barriers,
    /// summed across workers (diagnostic; not part of the report).
    barrier_wait_ns: AtomicU64,
}

impl<L: ShardLogic> Pdes<L> {
    /// Create an engine over `logics` (one per shard;
    /// `logics.len() == cfg.shards`).
    pub fn new(cfg: PdesConfig, logics: Vec<L>) -> Self {
        assert!(cfg.shards > 0, "at least one shard required");
        assert_eq!(
            logics.len(),
            cfg.shards as usize,
            "one ShardLogic per shard"
        );
        assert!(
            cfg.lookahead > SimDuration::ZERO,
            "zero lookahead admits no safe window"
        );
        let map = ShardMap::new(cfg.shards);
        let cells = logics
            .into_iter()
            .enumerate()
            .map(|(i, logic)| ShardCell::new(i as u32, logic, &cfg))
            .collect();
        let mailboxes = (0..cfg.shards)
            .map(|_| Mailbox::with_capacity(cfg.channel_capacity))
            .collect();
        Pdes {
            cfg,
            map,
            cells,
            mailboxes,
            epoch_hook: None,
            barrier_wait_ns: AtomicU64::new(0),
        }
    }

    /// Install the epoch-boundary callback (see [`EpochHook`]). Install
    /// before running; at most one hook is supported.
    pub fn set_epoch_hook(&mut self, hook: EpochHook) {
        self.epoch_hook = Some(hook);
    }

    /// Cumulative wall time workers spent blocked on epoch barriers, summed
    /// across workers. Zero before a parallel run (the inline and reference
    /// executors have no barriers).
    pub fn barrier_wait_ns(&self) -> u64 {
        self.barrier_wait_ns.load(Ordering::Relaxed)
    }

    /// Per-shard execution diagnostics, in shard order.
    pub fn shard_stats(&self) -> Vec<PdesShardStat> {
        self.cells
            .iter()
            .map(|c| PdesShardStat {
                shard: c.id,
                events: c.executed,
                sent_cross: c.sent_cross,
                mailbox_high_water: self.mailboxes[c.id as usize]
                    .high_water
                    .load(Ordering::Relaxed),
                mailbox_overflows: self.mailboxes[c.id as usize]
                    .overflows
                    .load(Ordering::Relaxed),
                slab_high_water: c.slab.high_water(),
            })
            .collect()
    }

    /// The node→shard map in force.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Inject an initial event for `node` at `at`. Call in a deterministic
    /// order (e.g. ascending node id): seeds take local-lane sequence
    /// numbers in call order.
    pub fn seed(&mut self, node: PdesNode, at: SimTime, ev: L::Event) {
        let shard = self.map.shard_of(node) as usize;
        self.cells[shard].push_local(at, node, ev);
    }

    /// Tear down and return the per-shard logic values (final model state),
    /// in shard order.
    pub fn into_logics(self) -> Vec<L> {
        self.cells.into_iter().map(|c| c.logic).collect()
    }

    fn report(&self, epochs: u64) -> PdesReport {
        PdesReport {
            events: self.cells.iter().map(|c| c.executed).sum(),
            cross_messages: self.cells.iter().map(|c| c.sent_cross).sum(),
            makespan: SimTime(
                self.cells
                    .iter()
                    .map(|c| c.last_time.as_nanos())
                    .max()
                    .unwrap_or(0),
            ),
            epochs,
            channel_high_water: self
                .mailboxes
                .iter()
                .map(|m| m.high_water.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
            channel_overflows: self
                .mailboxes
                .iter()
                .map(|m| m.overflows.load(Ordering::Relaxed))
                .sum(),
            slab_high_water: self
                .cells
                .iter()
                .map(|c| c.slab.high_water())
                .max()
                .unwrap_or(0),
        }
    }

    /// Run to completion with up to `jobs` worker threads (clamped to the
    /// shard count; `<= 1` runs the epoch loop inline with no threads or
    /// barriers). Results are byte-identical at every `jobs` value.
    pub fn run(&mut self, jobs: usize) -> PdesReport {
        let shards = self.cells.len();
        let jobs = jobs.max(1).min(shards);
        if jobs == 1 {
            return self.run_epochs_inline();
        }

        let lookahead = self.cfg.lookahead;
        let map = self.map;
        // Deal shards round-robin into exactly `jobs` groups: par_map
        // spawns one worker per group, so every group is owned by a live
        // thread and the barrier's participant count is exact.
        let mut groups: Vec<Vec<ShardCell<L>>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, cell) in self.cells.drain(..).enumerate() {
            groups[i % jobs].push(cell);
        }
        let mins: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let barrier = Barrier::new(jobs);
        let mailboxes = &self.mailboxes;
        let epoch_hook = &self.epoch_hook;
        let barrier_acc = &self.barrier_wait_ns;

        let finished = par_map(jobs, groups, |mut group: Vec<ShardCell<L>>| {
            let mut epochs = 0u64;
            let mut waited_ns = 0u64;
            loop {
                // Phase 1: merge last epoch's messages, publish minima.
                for cell in &mut group {
                    cell.merge_inbox(&mailboxes[cell.id as usize]);
                    mins[cell.id as usize].store(cell.next_time_ns(), Ordering::Release);
                }
                let t0 = Instant::now();
                barrier.wait();
                waited_ns += t0.elapsed().as_nanos() as u64;
                // Every worker computes the same bound from the same
                // published values, so all exit (or continue) together.
                let mut lbts = u64::MAX;
                for m in &mins {
                    lbts = lbts.min(m.load(Ordering::Acquire));
                }
                if lbts == u64::MAX {
                    break;
                }
                epochs += 1;
                let horizon = SimTime(lbts.saturating_add(lookahead.as_nanos()));
                // Phase 2: advance inside the safe window.
                for cell in &mut group {
                    cell.run_until(horizon, map, lookahead, mailboxes);
                }
                let t0 = Instant::now();
                let leader = barrier.wait().is_leader();
                waited_ns += t0.elapsed().as_nanos() as u64;
                // Exactly one worker observes the boundary. Safe: until the
                // leader reaches the next phase-1 barrier, the other workers
                // only merge mailboxes (no model events execute), so the
                // hook sees the quiesced post-window state.
                if leader {
                    if let Some(hook) = epoch_hook {
                        hook(&EpochObservation {
                            epoch: epochs,
                            lbts: SimTime(lbts),
                            horizon,
                        });
                    }
                }
            }
            barrier_acc.fetch_add(waited_ns, Ordering::Relaxed);
            (group, epochs)
        });

        let mut epochs = 0;
        for (group, e) in finished {
            epochs = e;
            self.cells.extend(group);
        }
        self.cells.sort_by_key(|c| c.id);
        self.report(epochs)
    }

    /// The `jobs == 1` epoch loop: same protocol, no threads, no barriers,
    /// no allocation in steady state.
    fn run_epochs_inline(&mut self) -> PdesReport {
        let lookahead = self.cfg.lookahead;
        let map = self.map;
        let mut epochs = 0u64;
        loop {
            let mut lbts = u64::MAX;
            for cell in &mut self.cells {
                cell.merge_inbox(&self.mailboxes[cell.id as usize]);
                lbts = lbts.min(cell.next_time_ns());
            }
            if lbts == u64::MAX {
                break;
            }
            epochs += 1;
            let horizon = SimTime(lbts.saturating_add(lookahead.as_nanos()));
            for cell in &mut self.cells {
                cell.run_until(horizon, map, lookahead, &self.mailboxes);
            }
            if let Some(hook) = &self.epoch_hook {
                hook(&EpochObservation {
                    epoch: epochs,
                    lbts: SimTime(lbts),
                    horizon,
                });
            }
        }
        self.report(epochs)
    }

    /// Sequential **reference executor**: one event at a time in global
    /// `(time, shard, seq)` order, merging cross-shard messages the moment
    /// they are sent. The plain global-heap semantics the parallel protocol
    /// must reproduce byte for byte. Asymptotically slower (an `O(shards)`
    /// scan per event); exists as the cross-check oracle and the `--jobs 0`
    /// fallback.
    ///
    /// Although execution is strictly one event at a time (never windowed),
    /// the loop *tracks* the epoch structure the parallel executors would
    /// impose — `lbts` is recomputed whenever the next event falls at or
    /// beyond the previous horizon — so the [`EpochHook`] fires at exactly
    /// the same `(epoch, lbts, horizon)` boundaries with exactly the same
    /// intermediate model state as every other executor. The report still
    /// carries `epochs == 0`, preserving the executor's signature.
    pub fn run_reference(&mut self) -> PdesReport {
        let lookahead = self.cfg.lookahead;
        let map = self.map;
        let mut epochs = 0u64;
        'windows: loop {
            // Boundary: all mailboxes are empty (merged after every event),
            // so the published minimum is just the earliest pending event.
            let lbts = self
                .cells
                .iter()
                .map(|c| c.next_time_ns())
                .min()
                .unwrap_or(u64::MAX);
            if lbts == u64::MAX {
                break 'windows;
            }
            epochs += 1;
            let horizon = SimTime(lbts.saturating_add(lookahead.as_nanos()));
            loop {
                // Earliest pending event across all shards, by global key.
                let mut best: Option<(SimTime, u32, u64)> = None;
                for cell in &self.cells {
                    if let Some(top) = cell.heap.peek() {
                        let key = (top.time, cell.id, top.seq);
                        if best.is_none() || key < best.unwrap() {
                            best = Some(key);
                        }
                    }
                }
                // Window exhausted (or engine idle): fire the boundary hook
                // and open the next window.
                let Some((time, shard, _)) = best else { break };
                if time >= horizon {
                    break;
                }
                self.cells[shard as usize].step_one(map, lookahead, &self.mailboxes);
                // Merge immediately: inbound counters advance in exactly
                // the global sender order, the order the merge-phase sort
                // reproduces batch-wise in epoch mode.
                for cell in &mut self.cells {
                    cell.merge_inbox(&self.mailboxes[cell.id as usize]);
                }
            }
            if let Some(hook) = &self.epoch_hook {
                hook(&EpochObservation {
                    epoch: epochs,
                    lbts: SimTime(lbts),
                    horizon,
                });
            }
        }
        self.report(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token ring: node n folds the token value into its accumulator and
    /// forwards it to (n+1) % nodes with a node-dependent latency. Order
    /// sensitivity comes from the fold being non-commutative.
    struct Ring {
        nodes: u32,
        map: ShardMap,
        acc: Vec<u64>, // local accumulators, indexed by local node index
    }

    #[derive(Clone, Copy)]
    struct Hop {
        value: u64,
        remaining: u32,
    }

    impl ShardLogic for Ring {
        type Event = Hop;
        fn handle(&mut self, ctx: &mut ShardCtx<'_, Hop>, node: PdesNode, ev: Hop) {
            let idx = self.map.local_index(node);
            self.acc[idx] = self.acc[idx]
                .wrapping_mul(0x100000001B3)
                .wrapping_add(ev.value ^ ctx.now().as_nanos());
            if ev.remaining > 0 {
                let next = (node + 1) % self.nodes;
                let delay = SimDuration::from_nanos(50 + (node as u64 % 7) * 3);
                ctx.send(
                    next,
                    delay,
                    Hop {
                        value: ev.value.wrapping_add(1),
                        remaining: ev.remaining - 1,
                    },
                );
            }
        }
    }

    fn ring_engine(nodes: u32, shards: u32, hops: u32) -> Pdes<Ring> {
        let cfg = PdesConfig {
            shards,
            lookahead: SimDuration::from_nanos(50),
            channel_capacity: 64,
            event_capacity: 64,
        };
        let map = ShardMap::new(shards);
        let per_shard = |s: u32| {
            let owned = (0..nodes).filter(|n| map.shard_of(*n) == s).count();
            Ring {
                nodes,
                map,
                acc: vec![0; owned],
            }
        };
        let mut pdes = Pdes::new(cfg, (0..shards).map(per_shard).collect());
        pdes.seed(
            0,
            SimTime(0),
            Hop {
                value: 7,
                remaining: hops,
            },
        );
        pdes
    }

    fn ring_digest(pdes: Pdes<Ring>) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for logic in pdes.into_logics() {
            for a in logic.acc {
                h = (h ^ a).wrapping_mul(0x100000001B3);
            }
        }
        h
    }

    #[test]
    fn all_executors_agree_on_the_ring() {
        let runs: Vec<(PdesReport, u64)> = [0usize, 1, 2, 3, 8]
            .iter()
            .map(|&jobs| {
                let mut pdes = ring_engine(23, 5, 400);
                let report = if jobs == 0 {
                    pdes.run_reference()
                } else {
                    pdes.run(jobs)
                };
                (report, ring_digest(pdes))
            })
            .collect();
        let (ref0, d0) = runs[0];
        assert_eq!(ref0.events, 401, "seed + 400 hops");
        for (r, d) in &runs[1..] {
            assert_eq!(r.deterministic_parts(), ref0.deterministic_parts());
            assert_eq!(*d, d0, "digest must not depend on executor or jobs");
        }
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let mut pdes = ring_engine(4, 1, 10);
        let r = pdes.run(4); // clamped to 1 shard
        assert_eq!(r.events, 11);
        assert_eq!(r.cross_messages, 0, "one shard has no wire");
    }

    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn cross_shard_send_inside_lookahead_panics() {
        struct Bad;
        impl ShardLogic for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut ShardCtx<'_, ()>, _node: PdesNode, _ev: ()) {
                // Node 1 lives on shard 1; zero delay < lookahead.
                ctx.send(1, SimDuration::ZERO, ());
            }
        }
        let cfg = PdesConfig {
            shards: 2,
            lookahead: SimDuration::from_nanos(100),
            ..PdesConfig::default()
        };
        let mut pdes = Pdes::new(cfg, vec![Bad, Bad]);
        pdes.seed(0, SimTime(0), ());
        pdes.run(1);
    }

    #[test]
    fn local_sends_may_undercut_lookahead() {
        struct Chain {
            fired: u64,
        }
        impl ShardLogic for Chain {
            type Event = u32;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u32>, node: PdesNode, rem: u32) {
                self.fired += 1;
                if rem > 0 {
                    // Same node => same shard: zero-delay is legal.
                    ctx.send(node, SimDuration::ZERO, rem - 1);
                }
            }
        }
        let cfg = PdesConfig {
            shards: 2,
            lookahead: SimDuration::from_micros(5),
            ..PdesConfig::default()
        };
        let mut pdes = Pdes::new(cfg, vec![Chain { fired: 0 }, Chain { fired: 0 }]);
        pdes.seed(0, SimTime(0), 9);
        let r = pdes.run(2);
        assert_eq!(r.events, 10);
        assert_eq!(r.makespan, SimTime(0), "zero-delay chain stays at t=0");
    }

    #[test]
    fn same_time_cross_and_local_events_order_deterministically() {
        // Node 1 (shard 1) receives a cross-shard delivery at exactly the
        // same instant as a locally seeded event. The two executors and
        // every job count must agree on the (specified) order: the fold
        // below is order-sensitive.
        struct Probe {
            log: u64,
        }
        #[derive(Clone, Copy)]
        enum Ev {
            Emit,        // node 0: send to node 1, arriving at t=100
            Tagged(u64), // fold the tag
        }
        impl ShardLogic for Probe {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, Ev>, _node: PdesNode, ev: Ev) {
                match ev {
                    Ev::Emit => ctx.send(1, SimDuration::from_nanos(100), Ev::Tagged(3)),
                    Ev::Tagged(t) => self.log = self.log.wrapping_mul(31).wrapping_add(t),
                }
            }
        }
        let run = |mode: usize| {
            let cfg = PdesConfig {
                shards: 2,
                lookahead: SimDuration::from_nanos(100),
                ..PdesConfig::default()
            };
            let mut pdes = Pdes::new(cfg, vec![Probe { log: 0 }, Probe { log: 0 }]);
            pdes.seed(0, SimTime(0), Ev::Emit);
            pdes.seed(1, SimTime(100), Ev::Tagged(5)); // collides with delivery
            if mode == 0 {
                pdes.run_reference();
            } else {
                pdes.run(mode);
            }
            pdes.into_logics()[1].log
        };
        let expect = run(0);
        assert_ne!(expect, 0);
        for jobs in [1, 2, 4] {
            assert_eq!(run(jobs), expect, "jobs={jobs} reordered a tie");
        }
    }

    #[test]
    fn channel_overflow_is_counted_not_fatal() {
        struct Blast {
            nodes: u32,
        }
        #[derive(Clone, Copy)]
        enum Ev {
            Go,
            Sink,
        }
        impl ShardLogic for Blast {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, Ev>, _node: PdesNode, ev: Ev) {
                if let Ev::Go = ev {
                    for n in 0..self.nodes {
                        if ctx.map().shard_of(n) != ctx.shard() {
                            ctx.send(n, SimDuration::from_nanos(10), Ev::Sink);
                        }
                    }
                }
            }
        }
        let cfg = PdesConfig {
            shards: 2,
            lookahead: SimDuration::from_nanos(10),
            channel_capacity: 3, // deliberately undersized
            event_capacity: 64,
        };
        let mut pdes = Pdes::new(cfg, vec![Blast { nodes: 16 }, Blast { nodes: 16 }]);
        pdes.seed(0, SimTime(0), Ev::Go);
        let r = pdes.run(2);
        assert_eq!(r.cross_messages, 8);
        assert!(r.channel_high_water > 3);
        assert!(r.channel_overflows > 0);
    }

    #[test]
    fn empty_engine_reports_zeroes() {
        struct Nop;
        impl ShardLogic for Nop {
            type Event = ();
            fn handle(&mut self, _: &mut ShardCtx<'_, ()>, _: PdesNode, _: ()) {}
        }
        let mut pdes = Pdes::new(PdesConfig::default(), (0..16).map(|_| Nop).collect());
        let r = pdes.run(4);
        assert_eq!(r, PdesReport::default());
    }
}
