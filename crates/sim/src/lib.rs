//! # partix-sim
//!
//! Deterministic discrete-event simulation substrate for the `partix`
//! reproduction of *"A Dynamic Network-Native MPI Partitioned Aggregation
//! Over InfiniBand Verbs"* (CLUSTER 2023).
//!
//! This crate provides:
//!
//! - a virtual clock and event queue ([`Scheduler`]) with deterministic
//!   same-instant ordering,
//! - [`Clock`]/[`Timer`] abstractions so the MPI runtime runs identically on
//!   virtual and wall-clock time,
//! - [`SerialResource`], the FIFO occupancy primitive used to model QP DMA
//!   engines, shared links, and software locks,
//! - seed-splitting helpers for reproducible noise ([`stream_rng`]),
//! - the sharded conservative-sync parallel-DES engine ([`pdes`]) and the
//!   order-preserving thread fan-out it runs on ([`parallel`]).
//!
//! The network *model* (LogGP parameters, per-transfer cost composition)
//! lives in `partix-verbs`; this crate is mechanism only.
//!
//! # Example
//!
//! ```
//! use partix_sim::{Scheduler, SimDuration, SimTime};
//! use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
//!
//! let sim = Scheduler::new();
//! let hits = Arc::new(AtomicU64::new(0));
//! for t_us in [30u64, 10, 20] {
//!     let hits = hits.clone();
//!     sim.at(SimTime(t_us * 1_000), move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! sim.run();
//! assert_eq!(hits.load(Ordering::Relaxed), 3);
//! assert_eq!(sim.now(), SimTime(30_000)); // the clock stopped at the last event
//! ```

#![warn(missing_docs)]

mod clock;
pub mod parallel;
pub mod pdes;
mod resource;
mod rng;
mod scheduler;
mod slab;
mod time;

pub use clock::{Clock, RealClock, SimClock, ThreadTimer, TimeSource, Timer};
pub use parallel::{default_jobs, par_map};
pub use resource::SerialResource;
pub use rng::{split_seed, stream_rng};
pub use scheduler::{EventKey, SampleHook, Scheduler};
pub use time::{SimDuration, SimTime};
