//! The discrete-event scheduler.
//!
//! A [`Scheduler`] owns a priority queue of timestamped events. Executing an
//! event may schedule further events through a clone of the same handle,
//! which is why the queue lives behind a lock that is *not* held while an
//! event runs.
//!
//! Determinism: two events scheduled for the same instant execute in the
//! order they were scheduled (a monotonically increasing sequence number
//! breaks ties), so a fixed seed yields a bit-identical simulation.
//!
//! # Hot-path layout
//!
//! The queue is split into two structures so the steady state allocates
//! nothing per event:
//!
//! - a **slab of event slots** holding the closures. Small closures (up to
//!   [`INLINE_EVENT_BYTES`] bytes, the common case for simulation callbacks)
//!   are stored *inline* in the slot — no `Box` per event; larger ones fall
//!   back to a heap box transparently. Freed slots go on a free list and are
//!   reused, so slab capacity reaches a high-water mark and stays there;
//! - an **index min-heap** of small `Copy` entries `(time, seq, slot)`.
//!   Sift operations move 24-byte records instead of fat closure objects,
//!   and the heap's backing storage is likewise reused across pops.
//!
//! [`run`](Scheduler::run) and [`run_until`](Scheduler::run_until) drain the
//! queue in **batches of same-timestamp events**: one lock acquisition pops
//! the whole batch (this is safe — any event a batch member schedules is
//! clamped to "now" and receives a later sequence number, so it can never
//! have to run before the rest of the batch). The pending-event count is
//! derived from the scheduled/executed counters, so
//! [`events_pending`](Scheduler::events_pending) never takes the lock and
//! the hot path pays no extra atomic per event.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::pdes::{
    EpochObservation, Pdes, PdesConfig, PdesNode, PdesReport, PdesShardStat, ShardCtx, ShardLogic,
};
use crate::slab::Slab;
use crate::time::{SimDuration, SimTime};

/// Closures up to this many bytes are stored inline in the event slab
/// (no per-event allocation). Chosen to fit the runtime's completion and
/// timer callbacks, which capture a handful of `Arc`s and integers.
pub const INLINE_EVENT_BYTES: usize = 48;

const INLINE_WORDS: usize = INLINE_EVENT_BYTES / size_of::<usize>();
type EventBuf = [usize; INLINE_WORDS];

/// Type-erased one-shot closure with inline small-object storage.
struct RawEvent {
    data: MaybeUninit<EventBuf>,
    call: unsafe fn(*mut EventBuf),
    drop_fn: unsafe fn(*mut EventBuf),
}

// Safety: only `Send` closures are stored (enforced by `RawEvent::new`'s
// bound); the erased buffer carries no shared references of its own.
unsafe impl Send for RawEvent {}

impl RawEvent {
    fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        unsafe fn call_inline<F: FnOnce()>(p: *mut EventBuf) {
            (std::ptr::read(p.cast::<F>()))()
        }
        unsafe fn drop_inline<F>(p: *mut EventBuf) {
            std::ptr::drop_in_place(p.cast::<F>())
        }
        unsafe fn call_boxed<F: FnOnce()>(p: *mut EventBuf) {
            (std::ptr::read(p.cast::<Box<F>>()))()
        }
        unsafe fn drop_boxed<F>(p: *mut EventBuf) {
            drop(std::ptr::read(p.cast::<Box<F>>()))
        }

        let mut data = MaybeUninit::<EventBuf>::uninit();
        if size_of::<F>() <= size_of::<EventBuf>() && align_of::<F>() <= align_of::<EventBuf>() {
            unsafe { data.as_mut_ptr().cast::<F>().write(f) };
            RawEvent {
                data,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            unsafe { data.as_mut_ptr().cast::<Box<F>>().write(Box::new(f)) };
            RawEvent {
                data,
                call: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    /// Execute the closure, consuming the event.
    fn run(self) {
        let mut me = ManuallyDrop::new(self);
        // Safety: ManuallyDrop guarantees drop_fn will not also run; `call`
        // takes ownership of the closure bytes.
        unsafe { (me.call)(me.data.as_mut_ptr()) }
    }
}

impl Drop for RawEvent {
    fn drop(&mut self) {
        // Only reached when an event is discarded unexecuted (queue
        // teardown); `run` suppresses this via ManuallyDrop.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr()) }
    }
}

/// The scheduler's **public total order**: events execute in ascending
/// `(time, seq)` order, where `seq` is the monotonically increasing number
/// assigned at scheduling time. Two events never share a key (seqs are
/// unique), so the order is total and tie-breaking at equal timestamps is
/// *specified* — scheduling order, not an accident of heap layout. The
/// sharded PDES engine extends this key with a shard coordinate (see
/// [`crate::pdes::ShardKey`]); both orders are part of the determinism
/// contract and are asserted by tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Virtual execution instant.
    pub time: SimTime,
    /// Scheduling sequence number, unique per scheduler.
    pub seq: u64,
}

/// Heap record: the ordering key plus the slab slot. `Copy`, 24 bytes.
#[derive(Clone, Copy)]
struct HeapEntry {
    key: EventKey,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the earliest entry.
        other.key.cmp(&self.key)
    }
}

struct Queue {
    heap: BinaryHeap<HeapEntry>,
    slots: Slab<RawEvent>,
}

impl Queue {
    fn with_capacity(n: usize) -> Self {
        Queue {
            heap: BinaryHeap::with_capacity(n),
            slots: Slab::with_capacity(n),
        }
    }
}

/// Per-node counts of node-affine events (see [`Scheduler::at_node`]).
/// Allocated once by [`Scheduler::enable_node_affinity`]; the last slot
/// collects events whose node id exceeds the configured range.
struct AffinityCounts {
    per_node: Box<[AtomicU64]>,
}

// ---------------------------------------------------------------------------
// Sharded execution mode
// ---------------------------------------------------------------------------
//
// `Scheduler::sharded` swaps the sequential queue for a `pdes::Pdes` engine
// whose `ShardLogic` is a thin adapter (`ClosureShard`) over the same
// type-erased `RawEvent` closures. Every node gets its own shard (so the
// deterministic `(time, shard, seq)` total order is independent of the job
// count), and `--jobs` only chooses how many worker threads the epochs run
// on. While a shard executes an event, its `ShardCtx` is published in a
// thread-local so that `Scheduler::at`/`at_node`/`now` calls made from
// inside the closure re-enter the owning shard: same-node schedules stay on
// the private local lane; cross-node schedules go through the mailbox merge
// lane and must respect the engine lookahead (the LogGP wire latency `L`).

/// Identity of the shard context currently executing an event on this
/// thread. `rt` disambiguates between coexisting sharded schedulers.
#[derive(Clone, Copy)]
struct ActiveShard {
    rt: u64,
    ctx: *mut (),
    node: PdesNode,
}

thread_local! {
    static ACTIVE_SHARD: Cell<Option<ActiveShard>> = const { Cell::new(None) };
}

/// Publishes a `ShardCtx` for the dynamic extent of one event, restoring
/// the previous value on drop (events never nest, but a shard event may
/// drive a *different* scheduler whose events re-check `rt`).
struct ActiveShardGuard {
    prev: Option<ActiveShard>,
}

impl ActiveShardGuard {
    fn enter(rt: u64, ctx: &mut ShardCtx<'_, RawEvent>, node: PdesNode) -> Self {
        let active = ActiveShard {
            rt,
            ctx: ctx as *mut ShardCtx<'_, RawEvent> as *mut (),
            node,
        };
        ActiveShardGuard {
            prev: ACTIVE_SHARD.with(|c| c.replace(Some(active))),
        }
    }
}

impl Drop for ActiveShardGuard {
    fn drop(&mut self) {
        ACTIVE_SHARD.with(|c| c.set(self.prev));
    }
}

/// Per-shard logic of the sharded scheduler: runs the stored closure with
/// the shard context published in thread-local storage so the closure's
/// `Scheduler` calls route back into this shard.
struct ClosureShard {
    rt: u64,
}

impl ShardLogic for ClosureShard {
    type Event = RawEvent;

    fn handle(&mut self, ctx: &mut ShardCtx<'_, RawEvent>, node: PdesNode, ev: RawEvent) {
        let _guard = ActiveShardGuard::enter(self.rt, ctx, node);
        ev.run();
    }
}

/// Engine state behind the sharded scheduler's lock: the pdes instance plus
/// bookkeeping to convert its cumulative report into per-`run` deltas.
struct EngineBox {
    pdes: Pdes<ClosureShard>,
    last_events: u64,
    last_report: Option<PdesReport>,
}

struct Sharded {
    /// Unique runtime token matching `ActiveShard::rt`.
    rt: u64,
    /// Worker threads for `run` (ignored by the reference executor).
    jobs: usize,
    /// Engine lookahead — the model's minimum cross-node latency.
    lookahead: SimDuration,
    /// Use the sequential reference executor (global `(time, shard, seq)`
    /// scan) instead of the barrier-epoch engine.
    reference: bool,
    engine: Mutex<EngineBox>,
}

/// Source of `Sharded::rt` tokens (0 is reserved for "none").
static SHARDED_RT: AtomicU64 = AtomicU64::new(1);

/// Sample hook installed by [`Scheduler::set_sample_hook`]: called with the
/// current simulation time in nanoseconds at deterministic points of the run
/// loop (epoch boundaries in sharded mode, after each same-timestamp batch
/// in sequential mode). The callee decides whether a sample is due, so the
/// hook must be cheap when idle.
pub type SampleHook = Arc<dyn Fn(u64) + Send + Sync>;

struct Inner {
    now: AtomicU64,
    seq: AtomicU64,
    executed: AtomicU64,
    queue: Mutex<Queue>,
    /// Reusable drain buffer for the batched run loops. Taken (not held)
    /// while events execute, so reentrant `run` calls stay safe.
    batch_buf: Mutex<Vec<RawEvent>>,
    /// Node-affinity diagnostics, populated lazily by
    /// [`Scheduler::enable_node_affinity`]. Disabled costs one pointer load
    /// per `at_node` call.
    affinity: OnceLock<AffinityCounts>,
    /// Present when this scheduler executes on the sharded PDES engine
    /// instead of the sequential queue.
    sharded: Option<Sharded>,
    /// Sequential-mode sample hook, called after each executed batch. In
    /// sharded mode the hook lives on the engine instead (epoch boundaries).
    sample_hook: OnceLock<SampleHook>,
}

/// Handle to the discrete-event simulation. Cheap to clone; all clones share
/// the same virtual clock and event queue.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// Cap on how many same-timestamp events one lock acquisition pops. Bounds
/// the drain buffer; batches larger than this simply take another trip.
const MAX_BATCH: usize = 128;

impl Scheduler {
    /// Create an empty simulation at t = 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty simulation with storage preallocated for `events`
    /// concurrent pending events.
    pub fn with_capacity(events: usize) -> Self {
        Scheduler {
            inner: Arc::new(Inner {
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                queue: Mutex::new(Queue::with_capacity(events)),
                batch_buf: Mutex::new(Vec::with_capacity(MAX_BATCH.min(events.max(16)))),
                affinity: OnceLock::new(),
                sharded: None,
                sample_hook: OnceLock::new(),
            }),
        }
    }

    /// Create a **sharded** scheduler for `nodes` simulated nodes: events
    /// execute on the conservative-sync PDES engine ([`crate::pdes`]) with
    /// one shard per node and `jobs` worker threads per [`run`](Self::run)
    /// call. `lookahead` is the model's minimum cross-node latency (the
    /// LogGP wire `L`): cross-node events closer than that panic at the
    /// scheduling site.
    ///
    /// The shard count is tied to `nodes`, not `jobs`, so the deterministic
    /// `(time, shard, seq)` total order — and therefore every digest — is
    /// identical at any job count. `step`/`step_n`/`run_until`/`run_bounded`
    /// are unsupported in this mode (the epoch protocol has no single global
    /// cursor to pause); drive it with `run`.
    pub fn sharded(nodes: u32, lookahead: SimDuration, jobs: usize) -> Self {
        Self::sharded_with(nodes, lookahead, jobs, false)
    }

    /// Like [`sharded`](Self::sharded) but executing on the sequential
    /// reference executor (the global `(time, shard, seq)` merge) — the
    /// oracle the parallel engine is byte-compared against.
    pub fn sharded_reference(nodes: u32, lookahead: SimDuration) -> Self {
        Self::sharded_with(nodes, lookahead, 1, true)
    }

    fn sharded_with(nodes: u32, lookahead: SimDuration, jobs: usize, reference: bool) -> Self {
        assert!(
            lookahead.as_nanos() > 0,
            "sharded scheduler requires a positive lookahead"
        );
        let shards = nodes.max(1);
        let rt = SHARDED_RT.fetch_add(1, AtomicOrdering::Relaxed);
        let cfg = PdesConfig {
            shards,
            lookahead,
            ..PdesConfig::default()
        };
        let logics = (0..shards).map(|_| ClosureShard { rt }).collect();
        let pdes = Pdes::new(cfg, logics);
        Scheduler {
            inner: Arc::new(Inner {
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                queue: Mutex::new(Queue::with_capacity(0)),
                batch_buf: Mutex::new(Vec::new()),
                affinity: OnceLock::new(),
                sharded: Some(Sharded {
                    rt,
                    jobs: jobs.max(1),
                    lookahead,
                    reference,
                    engine: Mutex::new(EngineBox {
                        pdes,
                        last_events: 0,
                        last_report: None,
                    }),
                }),
                sample_hook: OnceLock::new(),
            }),
        }
    }

    /// True when this scheduler executes on the sharded PDES engine.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.inner.sharded.is_some()
    }

    /// Worker-thread count of a sharded scheduler (`None` when sequential).
    pub fn sharded_jobs(&self) -> Option<usize> {
        self.inner.sharded.as_ref().map(|s| s.jobs)
    }

    /// Engine lookahead of a sharded scheduler (`None` when sequential).
    /// Two events separated by at least this much virtual time are
    /// happens-before ordered across shards even under parallel execution,
    /// so state written by the earlier one is visible to the later.
    pub fn sharded_lookahead(&self) -> Option<SimDuration> {
        self.inner.sharded.as_ref().map(|s| s.lookahead)
    }

    /// Engine report of the most recent sharded [`run`](Self::run) —
    /// cumulative event/cross-message counts, epochs, channel high-water.
    /// `None` when sequential or before the first run.
    pub fn pdes_report(&self) -> Option<PdesReport> {
        self.inner
            .sharded
            .as_ref()
            .and_then(|s| s.engine.lock().last_report)
    }

    /// Install the time-series sample hook. In sharded mode it fires once
    /// per barrier epoch with the epoch's LBTS — a quiescent, jobs-invariant
    /// instant, so frame sequences are byte-identical at any worker count.
    /// In sequential mode it fires after each same-timestamp batch with the
    /// batch time. One hook per scheduler; later calls are ignored.
    pub fn set_sample_hook(&self, hook: SampleHook) {
        if let Some(sh) = &self.inner.sharded {
            sh.engine
                .lock()
                .pdes
                .set_epoch_hook(Arc::new(move |obs: &EpochObservation| {
                    hook(obs.lbts.as_nanos());
                }));
            return;
        }
        let _ = self.inner.sample_hook.set(hook);
    }

    /// Per-shard execution stats of a sharded scheduler (events handled,
    /// cross-shard sends, mailbox high-water). Empty when sequential.
    pub fn pdes_shard_stats(&self) -> Vec<PdesShardStat> {
        self.inner
            .sharded
            .as_ref()
            .map_or_else(Vec::new, |s| s.engine.lock().pdes.shard_stats())
    }

    /// Cumulative wall-clock nanoseconds worker threads spent blocked on
    /// epoch barriers across all sharded runs. Zero when sequential or on
    /// the reference executor.
    pub fn pdes_barrier_wait_ns(&self) -> u64 {
        self.inner
            .sharded
            .as_ref()
            .map_or(0, |s| s.engine.lock().pdes.barrier_wait_ns())
    }

    /// The `ShardCtx` published by `ClosureShard::handle` when the calling
    /// thread is inside one of *this* scheduler's events, along with the
    /// event's node. The `&mut` lent to `handle` is suspended while the
    /// closure runs, so the reborrow is unique for the closure's extent.
    fn with_active_ctx<R>(
        &self,
        sh: &Sharded,
        f: impl FnOnce(&mut ShardCtx<'_, RawEvent>, PdesNode) -> R,
    ) -> Option<R> {
        let active = ACTIVE_SHARD.with(|c| c.get())?;
        if active.rt != sh.rt {
            return None;
        }
        // Safety: published by ClosureShard::handle on this thread for the
        // dynamic extent of the currently executing event; no other path can
        // reach the context while the closure runs. The 'static cast never
        // escapes this scope.
        let ctx = unsafe { &mut *(active.ctx as *mut ShardCtx<'static, RawEvent>) };
        Some(f(ctx, active.node))
    }

    /// Sharded-mode scheduling: from inside an event, route through the
    /// executing shard (`node: None` keeps the event on the current node);
    /// from outside, seed the engine directly (the engine is idle, so there
    /// is no lookahead constraint and seed order is the call order).
    fn sharded_schedule(
        &self,
        sh: &Sharded,
        node: Option<PdesNode>,
        t: SimTime,
        ev: RawEvent,
    ) -> EventKey {
        let seq = self.inner.seq.fetch_add(1, AtomicOrdering::Relaxed);
        let active = ACTIVE_SHARD.with(|c| c.get()).filter(|a| a.rt == sh.rt);
        let time = match active {
            Some(active) => {
                // Safety: same contract as `with_active_ctx`.
                let ctx = unsafe { &mut *(active.ctx as *mut ShardCtx<'static, RawEvent>) };
                let dst = node.unwrap_or(active.node);
                let at = t.max(ctx.now());
                ctx.send_at(dst, at, ev);
                at
            }
            None => {
                let dst = node.unwrap_or(0);
                let at = t.max(SimTime(self.inner.now.load(AtomicOrdering::Acquire)));
                sh.engine.lock().pdes.seed(dst, at, ev);
                at
            }
        };
        EventKey { time, seq }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        if let Some(sh) = &self.inner.sharded {
            if let Some(t) = self.with_active_ctx(sh, |ctx, _| ctx.now()) {
                return t;
            }
        }
        SimTime(self.inner.now.load(AtomicOrdering::Acquire))
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.executed.load(AtomicOrdering::Relaxed)
    }

    /// Number of events currently pending. Lock-free: derived from the
    /// scheduled/executed counters, so hot loops can poll it without
    /// touching the queue lock. Exact whenever the scheduler is quiescent;
    /// while a batch executes, events claimed for that batch already count
    /// as executed.
    #[inline]
    pub fn events_pending(&self) -> usize {
        let scheduled = self.inner.seq.load(AtomicOrdering::Acquire);
        let executed = self.inner.executed.load(AtomicOrdering::Acquire);
        scheduled.saturating_sub(executed) as usize
    }

    /// Schedule `f` to run at absolute time `t`. Scheduling in the past is a
    /// logic error; the event is clamped to "now" so the simulation still
    /// makes progress, which keeps real-time-adjacent code robust.
    pub fn at(&self, t: SimTime, f: impl FnOnce() + Send + 'static) {
        self.at_keyed(t, f);
    }

    /// Schedule `f` at `t` and return the [`EventKey`] it was assigned —
    /// the event's position in the scheduler's public `(time, seq)` total
    /// order. Two events at the same instant execute in ascending `seq`.
    ///
    /// On a sharded scheduler an unaffined event stays on the node of the
    /// event that scheduled it (main-thread schedules land on node 0), and
    /// the returned key is advisory — the executor's total order is the
    /// pdes `(time, shard, seq)` key.
    pub fn at_keyed(&self, t: SimTime, f: impl FnOnce() + Send + 'static) -> EventKey {
        if let Some(sh) = &self.inner.sharded {
            return self.sharded_schedule(sh, None, t, RawEvent::new(f));
        }
        let now = self.now();
        let t = t.max(now);
        let seq = self.inner.seq.fetch_add(1, AtomicOrdering::Relaxed);
        let ev = RawEvent::new(f);
        let mut q = self.inner.queue.lock();
        let slot = q.slots.insert(ev);
        let key = EventKey { time: t, seq };
        q.heap.push(HeapEntry { key, slot });
        key
    }

    /// Schedule `f` at `t` with **node affinity**: the event logically
    /// belongs to simulated node `node` (a wire delivery arriving there, a
    /// completion surfacing on its CQ). On the sequential scheduler the
    /// execution order is unchanged — affinity feeds the per-node event
    /// census ([`node_event_counts`](Self::node_event_counts)) that sizes
    /// and balances sharded PDES runs. On a sharded scheduler affinity **is
    /// the routing**: the event executes on `node`'s shard, and a
    /// cross-node schedule closer than the lookahead panics.
    pub fn at_node(&self, node: u32, t: SimTime, f: impl FnOnce() + Send + 'static) -> EventKey {
        if let Some(a) = self.inner.affinity.get() {
            let idx = (node as usize).min(a.per_node.len() - 1);
            a.per_node[idx].fetch_add(1, AtomicOrdering::Relaxed);
        }
        if let Some(sh) = &self.inner.sharded {
            return self.sharded_schedule(sh, Some(node), t, RawEvent::new(f));
        }
        self.at_keyed(t, f)
    }

    /// Turn on per-node affinity counting for node ids `0..nodes` (one
    /// overflow slot collects ids beyond the range). Idempotent; the first
    /// call wins. Counting is off by default so `at_node` costs the same as
    /// `at` in production runs.
    pub fn enable_node_affinity(&self, nodes: u32) {
        self.inner.affinity.get_or_init(|| AffinityCounts {
            per_node: (0..=nodes.max(1)).map(|_| AtomicU64::new(0)).collect(),
        });
    }

    /// Per-node counts of node-affine events scheduled so far (empty when
    /// affinity tracking was never enabled). Index `nodes` — the final
    /// slot — counts out-of-range ids.
    pub fn node_event_counts(&self) -> Vec<u64> {
        match self.inner.affinity.get() {
            Some(a) => a
                .per_node
                .iter()
                .map(|c| c.load(AtomicOrdering::Relaxed))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Schedule `f` to run `d` after the current virtual time.
    pub fn after(&self, d: SimDuration, f: impl FnOnce() + Send + 'static) {
        self.at(self.now() + d, f);
    }

    /// Execute the next pending event, advancing the clock to its timestamp.
    /// Returns `false` when the queue is empty. One lock acquisition per
    /// event (pop + slot release together). Unsupported in sharded mode.
    pub fn step(&self) -> bool {
        assert!(
            self.inner.sharded.is_none(),
            "Scheduler::step is unsupported in sharded mode; drive with run()"
        );
        let (entry, ev) = {
            let mut q = self.inner.queue.lock();
            match q.heap.pop() {
                Some(e) => {
                    let ev = q.slots.take(e.slot);
                    (e, ev)
                }
                None => return false,
            }
        };
        debug_assert!(entry.key.time >= self.now(), "event queue went backwards");
        self.inner
            .now
            .store(entry.key.time.as_nanos(), AtomicOrdering::Release);
        self.inner.executed.fetch_add(1, AtomicOrdering::Relaxed);
        ev.run();
        true
    }

    /// Pop the next batch of events sharing the earliest timestamp (up to
    /// `MAX_BATCH`, and only at or before `deadline` when given) with a
    /// single lock acquisition. The first event is returned by value — in the
    /// common steady state (batch of one) nothing touches `out` at all; only
    /// same-timestamp followers are copied into it.
    fn pop_batch(
        &self,
        deadline: Option<SimTime>,
        out: &mut Vec<RawEvent>,
    ) -> Option<(SimTime, RawEvent)> {
        let mut q = self.inner.queue.lock();
        let first = *q.heap.peek()?;
        if let Some(d) = deadline {
            if first.key.time > d {
                return None;
            }
        }
        let t = first.key.time;
        q.heap.pop();
        let first_ev = q.slots.take(first.slot);
        let mut n = 1;
        while n < MAX_BATCH {
            match q.heap.peek() {
                Some(e) if e.key.time == t => {
                    let e = q.heap.pop().expect("peeked entry");
                    let ev = q.slots.take(e.slot);
                    out.push(ev);
                    n += 1;
                }
                _ => break,
            }
        }
        Some((t, first_ev))
    }

    /// Drain loop shared by `run`/`run_until`/`step_n`: executes batches of
    /// same-timestamp events, locking once per batch instead of per event.
    fn run_batched(&self, deadline: Option<SimTime>, max_events: Option<u64>) -> u64 {
        let mut buf = std::mem::take(&mut *self.inner.batch_buf.lock());
        let mut n: u64 = 0;
        loop {
            if let Some(max) = max_events {
                if n >= max {
                    break;
                }
            }
            buf.clear();
            let Some((t, first)) = self.pop_batch(deadline, &mut buf) else {
                break;
            };
            debug_assert!(t >= self.now(), "event queue went backwards");
            self.inner.now.store(t.as_nanos(), AtomicOrdering::Release);
            let batch = 1 + buf.len() as u64;
            n += batch;
            self.inner
                .executed
                .fetch_add(batch, AtomicOrdering::Relaxed);
            first.run();
            for ev in buf.drain(..) {
                ev.run();
            }
            if let Some(hook) = self.inner.sample_hook.get() {
                hook(t.as_nanos());
            }
        }
        buf.clear();
        *self.inner.batch_buf.lock() = buf;
        n
    }

    /// Run until the event queue is empty. Returns the number of events
    /// executed by this call.
    ///
    /// Sharded mode: executes barrier epochs on the configured worker
    /// threads (or the sequential reference scan) until every shard drains,
    /// then parks the clock at the makespan. Not reentrant from inside one
    /// of this scheduler's own events.
    pub fn run(&self) -> u64 {
        if let Some(sh) = &self.inner.sharded {
            let reentrant = ACTIVE_SHARD
                .with(|c| c.get())
                .is_some_and(|a| a.rt == sh.rt);
            assert!(
                !reentrant,
                "Scheduler::run is not reentrant in sharded mode"
            );
            let mut eng = sh.engine.lock();
            let report = if sh.reference {
                eng.pdes.run_reference()
            } else {
                eng.pdes.run(sh.jobs)
            };
            let ran = report.events - eng.last_events;
            eng.last_events = report.events;
            eng.last_report = Some(report);
            if ran > 0 {
                self.inner
                    .now
                    .fetch_max(report.makespan.as_nanos(), AtomicOrdering::AcqRel);
            }
            self.inner.executed.fetch_add(ran, AtomicOrdering::Relaxed);
            return ran;
        }
        self.run_batched(None, None)
    }

    /// Execute up to `max` pending events (in timestamp order, batched).
    /// Returns how many ran; fewer than `max` means the queue drained.
    /// Note: a same-timestamp batch is never split, so up to `MAX_BATCH - 1`
    /// events beyond `max` may execute. Unsupported in sharded mode.
    pub fn step_n(&self, max: u64) -> u64 {
        assert!(
            self.inner.sharded.is_none(),
            "Scheduler::step_n is unsupported in sharded mode; drive with run()"
        );
        self.run_batched(None, Some(max))
    }

    /// Run until the queue is empty or the next event is later than
    /// `deadline` (which is left unexecuted). The clock does not advance past
    /// the last executed event. Unsupported in sharded mode (the epoch
    /// protocol has no single global cursor to pause at a deadline).
    pub fn run_until(&self, deadline: SimTime) -> u64 {
        assert!(
            self.inner.sharded.is_none(),
            "Scheduler::run_until is unsupported in sharded mode; drive with run()"
        );
        self.run_batched(Some(deadline), None)
    }

    /// Run with a safety valve: panics if more than `max_events` execute,
    /// which catches accidental event storms in tests.
    pub fn run_bounded(&self, max_events: u64) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
            assert!(
                n <= max_events,
                "simulation exceeded {max_events} events; likely an event storm"
            );
        }
        n
    }

    /// High-water mark of the event slab (diagnostics): how many slots have
    /// ever been live at once. Steady-state workloads should see this
    /// plateau while `events_executed` keeps climbing. Sharded mode reports
    /// the peak across shard slabs from the most recent run.
    pub fn slab_high_water(&self) -> usize {
        if let Some(sh) = &self.inner.sharded {
            return sh
                .engine
                .lock()
                .last_report
                .map_or(0, |r| r.slab_high_water);
        }
        self.inner.queue.lock().slots.high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_in_time_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.at(SimTime(t), move || log.lock().push(tag));
        }
        sim.run();
        assert_eq!(*log.lock(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime(30));
    }

    #[test]
    fn ties_execute_in_scheduling_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = log.clone();
            sim.at(SimTime(42), move || log.lock().push(i));
        }
        sim.run();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Scheduler::new();
        let count = Arc::new(AtomicUsize::new(0));
        fn chain(sim: Scheduler, count: Arc<AtomicUsize>, remaining: usize) {
            if remaining == 0 {
                return;
            }
            let s2 = sim.clone();
            sim.after(SimDuration(5), move || {
                count.fetch_add(1, AtomicOrdering::Relaxed);
                chain(s2.clone(), count.clone(), remaining - 1);
            });
        }
        chain(sim.clone(), count.clone(), 10);
        sim.run();
        assert_eq!(count.load(AtomicOrdering::Relaxed), 10);
        assert_eq!(sim.now(), SimTime(50));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let sim = Scheduler::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let s2 = sim.clone();
        sim.at(SimTime(100), move || {
            let f3 = f2.clone();
            // "Past" event: should fire at t=100, not break the heap.
            s2.at(SimTime(1), move || {
                f3.fetch_add(1, AtomicOrdering::Relaxed);
            });
        });
        sim.run();
        assert_eq!(fired.load(AtomicOrdering::Relaxed), 1);
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Scheduler::new();
        let count = Arc::new(AtomicUsize::new(0));
        for t in [10u64, 20, 30, 40] {
            let count = count.clone();
            sim.at(SimTime(t), move || {
                count.fetch_add(1, AtomicOrdering::Relaxed);
            });
        }
        let n = sim.run_until(SimTime(25));
        assert_eq!(n, 2);
        assert_eq!(count.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(count.load(AtomicOrdering::Relaxed), 4);
    }

    #[test]
    #[should_panic(expected = "event storm")]
    fn run_bounded_catches_storms() {
        let sim = Scheduler::new();
        fn storm(sim: Scheduler) {
            let s2 = sim.clone();
            sim.after(SimDuration(1), move || storm(s2.clone()));
        }
        storm(sim.clone());
        sim.run_bounded(100);
    }

    #[test]
    fn counters() {
        let sim = Scheduler::new();
        sim.at(SimTime(1), || {});
        sim.at(SimTime(2), || {});
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn step_n_respects_limit_and_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for t in [5u64, 1, 3, 2, 4] {
            let log = log.clone();
            sim.at(SimTime(t), move || log.lock().push(t));
        }
        let ran = sim.step_n(3);
        assert_eq!(ran, 3);
        assert_eq!(*log.lock(), vec![1, 2, 3]);
        assert_eq!(sim.step_n(10), 2);
        assert_eq!(*log.lock(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn slab_slots_are_reused_in_steady_state() {
        let sim = Scheduler::new();
        // Chain 1000 events, at most 2 pending at a time.
        fn chain(sim: Scheduler, remaining: u32) {
            if remaining == 0 {
                return;
            }
            let s2 = sim.clone();
            sim.after(SimDuration(1), move || chain(s2.clone(), remaining - 1));
        }
        chain(sim.clone(), 1_000);
        sim.run();
        assert_eq!(sim.events_executed(), 1_000);
        assert!(
            sim.slab_high_water() <= 2,
            "slab grew to {} slots for a 1-deep chain",
            sim.slab_high_water()
        );
    }

    #[test]
    fn large_closures_fall_back_to_boxing() {
        let sim = Scheduler::new();
        let big = [7u8; 512]; // larger than INLINE_EVENT_BYTES
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = sum.clone();
        sim.at(SimTime(1), move || {
            s2.store(
                big.iter().map(|&b| b as usize).sum(),
                AtomicOrdering::Relaxed,
            );
        });
        sim.run();
        assert_eq!(sum.load(AtomicOrdering::Relaxed), 7 * 512);
    }

    #[test]
    fn unexecuted_events_are_dropped_cleanly() {
        // An Arc captured by a never-run event must still be released when
        // the scheduler is dropped (drop_fn path).
        let sentinel = Arc::new(());
        let sim = Scheduler::new();
        let s2 = sentinel.clone();
        sim.at(SimTime(1), move || {
            let _keep = s2;
        });
        drop(sim);
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    fn batches_larger_than_max_batch_stay_ordered() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let n = MAX_BATCH * 3 + 17;
        for i in 0..n {
            let log = log.clone();
            sim.at(SimTime(7), move || log.lock().push(i));
        }
        sim.run();
        assert_eq!(*log.lock(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn event_keys_expose_the_total_order() {
        let sim = Scheduler::new();
        let k1 = sim.at_keyed(SimTime(10), || {});
        let k2 = sim.at_keyed(SimTime(10), || {});
        let k3 = sim.at_keyed(SimTime(5), || {});
        // Same instant: scheduling order is the specified tie-break.
        assert!(k1 < k2, "same-time keys must order by seq");
        // Earlier instant beats a smaller seq.
        assert!(k3 < k1 && k3.seq > k1.seq);
        assert_eq!(k1.time, SimTime(10));
        sim.run();
    }

    #[test]
    fn key_order_matches_execution_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut keys = Vec::new();
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (10, 'b'), (20, 'd')] {
            let log = log.clone();
            keys.push((sim.at_keyed(SimTime(t), move || log.lock().push(tag)), tag));
        }
        sim.run();
        let mut by_key = keys.clone();
        by_key.sort_by_key(|(k, _)| *k);
        let expect: Vec<char> = by_key.into_iter().map(|(_, tag)| tag).collect();
        assert_eq!(*log.lock(), expect);
    }

    #[test]
    fn node_affinity_census() {
        let sim = Scheduler::new();
        sim.enable_node_affinity(2);
        sim.at_node(0, SimTime(1), || {});
        sim.at_node(1, SimTime(2), || {});
        sim.at_node(1, SimTime(3), || {});
        sim.at_node(99, SimTime(4), || {}); // out of range -> overflow slot
        sim.run();
        assert_eq!(sim.node_event_counts(), vec![1, 2, 1]);
        // Disabled tracking reports nothing.
        let quiet = Scheduler::new();
        quiet.at_node(0, SimTime(1), || {});
        quiet.run();
        assert!(quiet.node_event_counts().is_empty());
    }

    /// A causal cross-node hop chain run on every executor flavour must
    /// visit nodes in the same order at the same virtual times.
    fn hop_chain(sched: &Scheduler, lookahead: SimDuration, hops: u32) -> Vec<(u32, u64)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        fn hop(
            sched: Scheduler,
            log: Arc<Mutex<Vec<(u32, u64)>>>,
            lookahead: SimDuration,
            node: u32,
            remaining: u32,
        ) {
            let t = sched.now() + lookahead;
            let s2 = sched.clone();
            sched.at_node(node, t, move || {
                log.lock().push((node, s2.now().as_nanos()));
                if remaining > 0 {
                    hop(
                        s2.clone(),
                        log.clone(),
                        lookahead,
                        (node + 1) % 4,
                        remaining - 1,
                    );
                }
            });
        }
        hop(sched.clone(), log.clone(), lookahead, 0, hops);
        sched.run();
        let out = log.lock().clone();
        out
    }

    #[test]
    fn sharded_matches_reference_and_jobs() {
        let la = SimDuration(10);
        let want = hop_chain(&Scheduler::sharded_reference(4, la), la, 40);
        assert_eq!(want.len(), 41);
        for jobs in [1, 2, 4] {
            let got = hop_chain(&Scheduler::sharded(4, la, jobs), la, 40);
            assert_eq!(got, want, "jobs={jobs} diverged from reference");
        }
        // The sequential scheduler agrees too: same virtual timing model.
        assert_eq!(hop_chain(&Scheduler::new(), la, 40), want);
    }

    #[test]
    fn sharded_unaffined_events_stay_on_scheduling_node() {
        let sim = Scheduler::sharded(3, SimDuration(5), 2);
        sim.enable_node_affinity(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, s2) = (log.clone(), sim.clone());
        // Main-thread `at` seeds node 0; the inner `after` must stay local
        // to node 1 without tripping the cross-shard lookahead assert.
        sim.at_node(1, SimTime(100), move || {
            let l2 = l1.clone();
            let s3 = s2.clone();
            s2.after(SimDuration(1), move || {
                l2.lock().push(s3.now());
            });
        });
        sim.run();
        assert_eq!(*log.lock(), vec![SimTime(101)]);
        assert_eq!(sim.now(), SimTime(101));
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn sharded_run_is_repeatable_across_seeding_rounds() {
        let sim = Scheduler::sharded(2, SimDuration(5), 2);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        sim.at_node(0, SimTime(1), move || {
            c2.fetch_add(1, AtomicOrdering::Relaxed);
        });
        assert_eq!(sim.run(), 1);
        let c3 = count.clone();
        sim.at_node(1, SimTime(50), move || {
            c3.fetch_add(1, AtomicOrdering::Relaxed);
        });
        assert_eq!(sim.run(), 1);
        assert_eq!(count.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(sim.events_executed(), 2);
        assert!(sim.pdes_report().is_some());
    }

    #[test]
    #[should_panic(expected = "violates lookahead")]
    fn sharded_cross_node_event_inside_lookahead_panics() {
        let sim = Scheduler::sharded(2, SimDuration(100), 1);
        let s2 = sim.clone();
        sim.at_node(0, SimTime(10), move || {
            // Node 1 lives on another shard; 1 ns ahead < lookahead.
            s2.at_node(1, s2.now() + SimDuration(1), || {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unsupported in sharded mode")]
    fn sharded_step_panics() {
        Scheduler::sharded(2, SimDuration(1), 1).step();
    }

    #[test]
    fn reentrant_run_from_event_is_safe() {
        // An event invoking run() on its own scheduler must not deadlock or
        // corrupt the drain buffer.
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let s2 = sim.clone();
        sim.at(SimTime(1), move || {
            l1.lock().push("outer");
            let l3 = l2.clone();
            s2.at(SimTime(2), move || l3.lock().push("inner"));
            s2.run();
        });
        sim.run();
        assert_eq!(*log.lock(), vec!["outer", "inner"]);
    }

    #[test]
    fn sequential_sample_hook_sees_batch_times() {
        let sim = Scheduler::new();
        let ticks = Arc::new(Mutex::new(Vec::new()));
        let t2 = ticks.clone();
        sim.set_sample_hook(Arc::new(move |t| t2.lock().push(t)));
        for t in [10u64, 10, 20, 30] {
            sim.at(SimTime(t), || {});
        }
        sim.run();
        // One call per same-timestamp batch, in order.
        assert_eq!(*ticks.lock(), vec![10, 20, 30]);
    }

    #[test]
    fn sharded_sample_hook_ticks_are_jobs_invariant() {
        let la = SimDuration(10);
        let ticks_for = |jobs: usize| {
            let sim = Scheduler::sharded(4, la, jobs);
            let ticks = Arc::new(Mutex::new(Vec::new()));
            let t2 = ticks.clone();
            sim.set_sample_hook(Arc::new(move |t| t2.lock().push(t)));
            hop_chain(&sim, la, 40);
            let out = ticks.lock().clone();
            out
        };
        let want = ticks_for(1);
        assert!(!want.is_empty(), "epoch hook never fired");
        for jobs in [2, 4] {
            assert_eq!(ticks_for(jobs), want, "jobs={jobs} tick sequence diverged");
        }
    }

    #[test]
    fn sharded_shard_stats_cover_every_shard() {
        let la = SimDuration(10);
        let sim = Scheduler::sharded(4, la, 2);
        hop_chain(&sim, la, 40);
        let stats = sim.pdes_shard_stats();
        assert_eq!(stats.len(), 4);
        let total: u64 = stats.iter().map(|s| s.events).sum();
        assert_eq!(total, 41);
        let ratio = crate::pdes::imbalance_ratio(&stats);
        assert!(ratio >= 1.0, "imbalance ratio {ratio} below 1.0");
        // Sequential schedulers report nothing.
        assert!(Scheduler::new().pdes_shard_stats().is_empty());
        assert_eq!(Scheduler::new().pdes_barrier_wait_ns(), 0);
    }
}
