//! The discrete-event scheduler.
//!
//! A [`Scheduler`] owns a priority queue of timestamped events. Events are
//! boxed closures; executing an event may schedule further events through a
//! clone of the same handle, which is why the queue lives behind a lock that
//! is *not* held while an event runs.
//!
//! Determinism: two events scheduled for the same instant execute in the
//! order they were scheduled (a monotonically increasing sequence number
//! breaks ties), so a fixed seed yields a bit-identical simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a one-shot closure.
type EventFn = Box<dyn FnOnce() + Send>;

struct Entry {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

// Min-heap ordering: earliest time first, then lowest sequence number.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that BinaryHeap (a max-heap) pops the earliest entry.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    now: AtomicU64,
    seq: AtomicU64,
    executed: AtomicU64,
    queue: Mutex<BinaryHeap<Entry>>,
}

/// Handle to the discrete-event simulation. Cheap to clone; all clones share
/// the same virtual clock and event queue.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Create an empty simulation at t = 0.
    pub fn new() -> Self {
        Scheduler {
            inner: Arc::new(Inner {
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                queue: Mutex::new(BinaryHeap::new()),
            }),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.now.load(AtomicOrdering::Acquire))
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.inner.executed.load(AtomicOrdering::Relaxed)
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Schedule `f` to run at absolute time `t`. Scheduling in the past is a
    /// logic error; the event is clamped to "now" so the simulation still
    /// makes progress, which keeps real-time-adjacent code robust.
    pub fn at(&self, t: SimTime, f: impl FnOnce() + Send + 'static) {
        let now = self.now();
        let t = t.max(now);
        let seq = self.inner.seq.fetch_add(1, AtomicOrdering::Relaxed);
        self.inner.queue.lock().push(Entry {
            time: t,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to run `d` after the current virtual time.
    pub fn after(&self, d: SimDuration, f: impl FnOnce() + Send + 'static) {
        self.at(self.now() + d, f);
    }

    /// Execute the next pending event, advancing the clock to its timestamp.
    /// Returns `false` when the queue is empty.
    pub fn step(&self) -> bool {
        let entry = {
            let mut q = self.inner.queue.lock();
            match q.pop() {
                Some(e) => e,
                None => return false,
            }
        };
        debug_assert!(entry.time >= self.now(), "event queue went backwards");
        self.inner
            .now
            .store(entry.time.as_nanos(), AtomicOrdering::Release);
        (entry.f)();
        self.inner.executed.fetch_add(1, AtomicOrdering::Relaxed);
        true
    }

    /// Run until the event queue is empty. Returns the number of events
    /// executed by this call.
    pub fn run(&self) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Run until the queue is empty or the next event is later than
    /// `deadline` (which is left unexecuted). The clock does not advance past
    /// the last executed event.
    pub fn run_until(&self, deadline: SimTime) -> u64 {
        let mut n = 0;
        loop {
            {
                let q = self.inner.queue.lock();
                match q.peek() {
                    Some(e) if e.time <= deadline => {}
                    _ => return n,
                }
            }
            if !self.step() {
                return n;
            }
            n += 1;
        }
    }

    /// Run with a safety valve: panics if more than `max_events` execute,
    /// which catches accidental event storms in tests.
    pub fn run_bounded(&self, max_events: u64) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
            assert!(
                n <= max_events,
                "simulation exceeded {max_events} events; likely an event storm"
            );
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_in_time_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.at(SimTime(t), move || log.lock().push(tag));
        }
        sim.run();
        assert_eq!(*log.lock(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime(30));
    }

    #[test]
    fn ties_execute_in_scheduling_order() {
        let sim = Scheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = log.clone();
            sim.at(SimTime(42), move || log.lock().push(i));
        }
        sim.run();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Scheduler::new();
        let count = Arc::new(AtomicUsize::new(0));
        fn chain(sim: Scheduler, count: Arc<AtomicUsize>, remaining: usize) {
            if remaining == 0 {
                return;
            }
            let s2 = sim.clone();
            sim.after(SimDuration(5), move || {
                count.fetch_add(1, AtomicOrdering::Relaxed);
                chain(s2.clone(), count.clone(), remaining - 1);
            });
        }
        chain(sim.clone(), count.clone(), 10);
        sim.run();
        assert_eq!(count.load(AtomicOrdering::Relaxed), 10);
        assert_eq!(sim.now(), SimTime(50));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let sim = Scheduler::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let s2 = sim.clone();
        sim.at(SimTime(100), move || {
            let f3 = f2.clone();
            // "Past" event: should fire at t=100, not break the heap.
            s2.at(SimTime(1), move || {
                f3.fetch_add(1, AtomicOrdering::Relaxed);
            });
        });
        sim.run();
        assert_eq!(fired.load(AtomicOrdering::Relaxed), 1);
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Scheduler::new();
        let count = Arc::new(AtomicUsize::new(0));
        for t in [10u64, 20, 30, 40] {
            let count = count.clone();
            sim.at(SimTime(t), move || {
                count.fetch_add(1, AtomicOrdering::Relaxed);
            });
        }
        let n = sim.run_until(SimTime(25));
        assert_eq!(n, 2);
        assert_eq!(count.load(AtomicOrdering::Relaxed), 2);
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(count.load(AtomicOrdering::Relaxed), 4);
    }

    #[test]
    #[should_panic(expected = "event storm")]
    fn run_bounded_catches_storms() {
        let sim = Scheduler::new();
        fn storm(sim: Scheduler) {
            let s2 = sim.clone();
            sim.after(SimDuration(1), move || storm(s2.clone()));
        }
        storm(sim.clone());
        sim.run_bounded(100);
    }

    #[test]
    fn counters() {
        let sim = Scheduler::new();
        sim.at(SimTime(1), || {});
        sim.at(SimTime(2), || {});
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.events_pending(), 0);
    }
}
