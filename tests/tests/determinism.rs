//! Bit-reproducibility of the simulation: identical configurations produce
//! identical virtual timelines, WR counts, and figure data across runs —
//! the property that makes the regenerated figures trustworthy.

use partix_core::{AggregatorKind, PartixConfig, SimDuration};
use partix_workloads::overhead::OverheadSweep;
use partix_workloads::sweep::{run_sweep, SweepConfig};
use partix_workloads::{run_pt2pt, Pt2PtConfig, ThreadTiming};

fn pt2pt_fingerprint(kind: AggregatorKind, seed: u64) -> (Vec<u64>, u64) {
    let mut partix = PartixConfig::with_aggregator(kind);
    partix.fabric.copy_data = false;
    let cfg = Pt2PtConfig {
        partix,
        partitions: 32,
        part_bytes: 8 << 10,
        warmup: 2,
        iters: 6,
        timing: ThreadTiming::perceived_bw(1, 0.04),
        seed,
    };
    let r = run_pt2pt(&cfg);
    (
        r.rounds
            .iter()
            .map(|s| s.recv_complete.as_nanos())
            .collect(),
        r.total_wrs,
    )
}

#[test]
fn pt2pt_runs_are_bit_identical() {
    for kind in [
        AggregatorKind::Persistent,
        AggregatorKind::PLogGp,
        AggregatorKind::TimerPLogGp,
    ] {
        let a = pt2pt_fingerprint(kind, 7);
        let b = pt2pt_fingerprint(kind, 7);
        assert_eq!(a, b, "{kind:?} not reproducible");
    }
}

#[test]
fn different_seeds_differ() {
    let a = pt2pt_fingerprint(AggregatorKind::PLogGp, 1);
    let b = pt2pt_fingerprint(AggregatorKind::PLogGp, 2);
    assert_ne!(a.0, b.0, "seeds must matter");
}

#[test]
fn overhead_sweep_reproducible() {
    let run = || {
        let mut s = OverheadSweep::new(
            PartixConfig::with_aggregator(AggregatorKind::TuningTable),
            16,
            vec![64 << 10, 1 << 20],
        );
        s.warmup = 1;
        s.iters = 5;
        s.run()
            .into_iter()
            .map(|p| {
                (
                    p.total_bytes,
                    p.mean_ns.to_bits(),
                    p.wrs_per_round.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn sweep_reproducible_and_noise_sensitive() {
    let run = |noise: f64| {
        let mut cfg = SweepConfig::paper_1024(
            PartixConfig::with_aggregator(AggregatorKind::TimerPLogGp),
            4 << 10,
        );
        cfg.rows = 4;
        cfg.cols = 4;
        cfg.threads = 8;
        cfg.compute = SimDuration::from_micros(500);
        cfg.noise_frac = noise;
        cfg.warmup = 1;
        cfg.iters = 3;
        run_sweep(&cfg).mean_total_ns.to_bits()
    };
    assert_eq!(run(0.04), run(0.04));
    assert_ne!(run(0.04), run(0.01));
}
