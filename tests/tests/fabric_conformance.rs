//! Backend conformance matrix.
//!
//! Each test runs one scenario from `partix_verbs::conformance` against
//! every fabric backend — virtual-clock sim, synchronous instant, the
//! seeded lossy decorator, and the real-time shared-memory fabric — and
//! asserts the digests (payload hashes, CQE sequences, deterministic
//! ledger counters) are byte-identical across the matrix. Scenarios also
//! self-check the telemetry invariant laws per backend.

use partix_verbs::conformance::{assert_digests_match, assert_uniform, scenarios, BackendKind};

fn run(name: &str) {
    let table = scenarios();
    let scenario = table
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} not in conformance table"));
    let digest = assert_uniform(scenario);
    assert!(!digest.is_empty(), "{name}: empty digest");
}

macro_rules! conformance_tests {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                run(stringify!($name));
            }
        )*

        /// Every scenario in the harness table has a matching test here, so
        /// adding a scenario without wiring it up fails loudly.
        #[test]
        fn scenario_table_is_fully_covered() {
            let covered = [$(stringify!($name)),*];
            let table = scenarios();
            for s in &table {
                assert!(
                    covered.contains(&s.name),
                    "scenario {} has no conformance test",
                    s.name
                );
            }
            assert_eq!(covered.len(), table.len(), "stale test entries");
        }
    };
}

/// The whole scenario table, digest-compared head-to-head: the sequential
/// sim backend (whose digests the matrix pins) against the sharded PDES
/// executor running the same fabric with two shards and two worker threads.
/// Byte-identical digests here are the conformance half of the "full stack
/// on the sharded engine" guarantee; the workload half lives in
/// `pdes_determinism`.
#[test]
fn sharded_executor_digests_match_sequential_sim() {
    for s in &scenarios() {
        let sequential = (s.run)(BackendKind::Sim);
        let sharded = (s.run)(BackendKind::SimSharded);
        // Names the scenario and both backends with a per-line diff on
        // failure, instead of dumping the two raw digest vectors.
        assert_digests_match(
            s.name,
            BackendKind::Sim,
            &sequential,
            BackendKind::SimSharded,
            &sharded,
        );
    }
}

conformance_tests!(
    connect_teardown_reconnect,
    write_imm_roundtrip,
    bare_write_has_no_recv_cqe,
    two_sided_send_scatter,
    send_with_imm_roundtrip,
    gather_three_sge_write,
    mtu_segmentation_ledger,
    wr_cap_spill_sequential,
    batch_partial_grant,
    psn_exactly_once_under_duplicates,
    drop_retransmit_recovery,
    chaos_storm_delivers_exactly_once,
    rnr_exhausts_without_receiver,
    qp_error_then_recovery_cycle,
    remote_access_error_writes_nothing,
    two_sided_overflow_is_length_error,
    inline_send_arena_conservation,
    imm_encoding_sweep,
    bidirectional_interleave,
    multi_qp_fanout,
    sequential_stream_wraps_transport,
    flow_stage_trace,
);
