//! Chaos suite: the full stack over a lossy wire.
//!
//! A seeded [`LossyConfig::chaos`] wire drops, duplicates, and delays
//! transfers underneath every aggregation strategy. With the default
//! [`ReliabilityConfig`] the application must never notice: every round
//! terminates, every byte arrives exactly once, and the only trace of the
//! chaos is in the reliability counters. With retries disabled, the first
//! loss must still surface as a failure — the legacy semantics are opt-out,
//! not silently changed.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use partix_core::{
    AggregatorKind, LossyConfig, MemoryRegion, PartixConfig, PartixError, PrecvRequest,
    PsendRequest, ReliabilityConfig, Scheduler, SimDuration, World,
};
use partix_system_tests::pattern;
use partix_workloads::halo::{run_halo, HaloConfig};
use partix_workloads::sweep::{run_sweep, SweepConfig};

const KINDS: [AggregatorKind; 4] = [
    AggregatorKind::Persistent,
    AggregatorKind::TuningTable,
    AggregatorKind::PLogGp,
    AggregatorKind::TimerPLogGp,
];

const PARTITIONS: u32 = 8;
const PART_BYTES: usize = 256;

/// What a chaotic run left behind.
struct ChaosOutcome {
    completed_rounds: u64,
    /// Virtual-time ns at which each round had both sides complete.
    completion_times: Vec<u64>,
    recoveries: u64,
    error: Option<&'static str>,
    drops: u64,
    retransmits: u64,
    duplicates: u64,
}

struct ChaosDriver {
    world: World,
    sched: Scheduler,
    send: PsendRequest,
    recv: PrecvRequest,
    sbuf: MemoryRegion,
    rbuf: MemoryRegion,
    rounds: u64,
    round: AtomicU64,
    sides: AtomicU32,
    completions: Mutex<Vec<u64>>,
}

impl ChaosDriver {
    fn start_round(self: &Arc<Self>) {
        let round = self.round.load(Ordering::Acquire) + 1; // 1-based pattern
        self.recv.start().expect("recv start");
        self.send.start().expect("send start");
        self.sides.store(2, Ordering::Release);
        let me = self.clone();
        self.send.on_complete(move || me.side_done());
        let me = self.clone();
        self.recv.on_complete(move || me.side_done());
        for i in 0..PARTITIONS {
            let me = self.clone();
            // Stagger preadys a little so retransmissions interleave with
            // fresh posts rather than arriving against an idle wire.
            self.sched
                .after(SimDuration::from_micros((i as u64 % 5) * 3), move || {
                    me.sbuf
                        .fill(i as usize * PART_BYTES, PART_BYTES, pattern(round, i))
                        .expect("fill");
                    me.send.pready(i).expect("pready");
                });
        }
    }

    fn side_done(self: &Arc<Self>) {
        if self.sides.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        let round = self.round.fetch_add(1, Ordering::AcqRel) + 1;
        self.completions.lock().push(self.world.now().as_nanos());
        // Exactly-once at the memory region: despite drops, duplicates and
        // delays underneath, every partition holds this round's bytes.
        for i in 0..PARTITIONS {
            let got = self
                .rbuf
                .read_vec(i as usize * PART_BYTES, PART_BYTES)
                .expect("read");
            assert!(
                got.iter().all(|b| *b == pattern(round, i)),
                "round {round} partition {i} corrupted under chaos"
            );
        }
        if round < self.rounds {
            let me = self.clone();
            self.sched
                .after(SimDuration::from_micros(1), move || me.start_round());
        }
    }
}

fn run_chaos(kind: AggregatorKind, seed: u64, drop_p: f64, rounds: u64) -> ChaosOutcome {
    let mut cfg = PartixConfig::with_aggregator(kind);
    cfg.loss = Some(LossyConfig::chaos(drop_p, seed));
    let (world, sched) = World::sim(2, cfg);
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let total = PARTITIONS as usize * PART_BYTES;
    let sbuf = p0.alloc_buffer(total).expect("send buffer");
    let rbuf = p1.alloc_buffer(total).expect("recv buffer");
    let send = p0
        .psend_init(&sbuf, PARTITIONS, PART_BYTES, 1, 0)
        .expect("psend_init");
    let recv = p1
        .precv_init(&rbuf, PARTITIONS, PART_BYTES, 0, 0)
        .expect("precv_init");
    let driver = Arc::new(ChaosDriver {
        world: world.clone(),
        sched: sched.clone(),
        send: send.clone(),
        recv: recv.clone(),
        sbuf,
        rbuf,
        rounds,
        round: AtomicU64::new(0),
        sides: AtomicU32::new(0),
        completions: Mutex::new(Vec::new()),
    });
    let d2 = driver.clone();
    send.on_ready(move || d2.start_round());
    sched.run();
    let lossy = world.lossy_fabric().expect("lossy wire installed");
    // Counter conservation after every chaotic scenario: the telemetry
    // ledger must reconcile, and its wire counters must mirror the loss
    // model's own books exactly — a drop, retransmit, or ghost that one
    // side saw and the other didn't means an accounting hole.
    let snap = world.telemetry_snapshot();
    partix_core::invariants::check(&snap).assert_clean();
    assert_eq!(snap.wire.dropped, lossy.dropped(), "drop ledger mismatch");
    assert_eq!(
        snap.wire.retransmits,
        lossy.retransmits(),
        "retransmit ledger mismatch"
    );
    assert_eq!(
        snap.wire.duplicates_injected,
        lossy.duplicated(),
        "duplicate ledger mismatch"
    );
    let completion_times = std::mem::take(&mut *driver.completions.lock());
    ChaosOutcome {
        completed_rounds: driver.round.load(Ordering::Acquire),
        completion_times,
        recoveries: send.recoveries(),
        error: send.error(),
        drops: lossy.dropped(),
        retransmits: lossy.retransmits(),
        duplicates: lossy.duplicated(),
    }
}

/// The headline guarantee: at 5% drop (plus duplicates and delays), every
/// strategy completes every round byte-identically for every seed, with
/// zero application-visible failures.
#[test]
fn every_strategy_survives_five_percent_loss() {
    let mut total_drops = 0;
    for kind in KINDS {
        for seed in [1u64, 2, 3, 4] {
            let out = run_chaos(kind, seed, 0.05, 3);
            assert_eq!(
                out.completed_rounds, 3,
                "{kind:?} seed {seed} did not finish"
            );
            assert_eq!(out.error, None, "{kind:?} seed {seed} surfaced an error");
            assert_eq!(
                out.retransmits, out.drops,
                "{kind:?} seed {seed}: every drop must be retransmitted"
            );
            total_drops += out.drops;
        }
    }
    assert!(total_drops > 0, "the chaos wire never actually misbehaved");
}

/// Heavier weather: 20% drop rate still terminates correctly (retry budget
/// 7 makes exhaustion astronomically unlikely), exercising multi-attempt
/// backoff chains rather than single retransmissions.
#[test]
fn heavy_loss_still_terminates() {
    for seed in [7u64, 8] {
        let out = run_chaos(AggregatorKind::Persistent, seed, 0.20, 2);
        assert_eq!(out.completed_rounds, 2);
        assert_eq!(out.error, None);
        assert!(out.drops > 0, "20% loss must drop something");
    }
}

/// Determinism under chaos: same seed and configuration reproduce the exact
/// completion timeline, fault pattern, and recovery count; a different seed
/// produces a different fault pattern.
#[test]
fn chaos_timeline_is_reproducible() {
    let a = run_chaos(AggregatorKind::TuningTable, 42, 0.10, 3);
    let b = run_chaos(AggregatorKind::TuningTable, 42, 0.10, 3);
    assert_eq!(a.completion_times, b.completion_times);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.duplicates, b.duplicates);
    assert_eq!(a.recoveries, b.recoveries);

    let c = run_chaos(AggregatorKind::TuningTable, 43, 0.10, 3);
    assert_ne!(
        (a.completion_times, a.drops, a.duplicates),
        (c.completion_times, c.drops, c.duplicates),
        "different seeds should see different chaos"
    );
}

/// With the reliability layer disabled, the legacy semantics hold: the
/// first loss surfaces as `TransferFailed` instead of being absorbed.
#[test]
fn zero_retries_preserve_first_loss_failure() {
    let mut cfg = PartixConfig::with_aggregator(AggregatorKind::Persistent);
    cfg.reliability = ReliabilityConfig::disabled();
    cfg.loss = Some(LossyConfig::drops(1.0, 99));
    let (world, sched) = World::sim(2, cfg);
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let total = PARTITIONS as usize * PART_BYTES;
    let sbuf = p0.alloc_buffer(total).unwrap();
    let rbuf = p1.alloc_buffer(total).unwrap();
    let send = p0.psend_init(&sbuf, PARTITIONS, PART_BYTES, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, PARTITIONS, PART_BYTES, 0, 0).unwrap();
    let send2 = send.clone();
    let recv2 = recv.clone();
    send.on_ready(move || {
        recv2.start().unwrap();
        send2.start().unwrap();
        for i in 0..PARTITIONS {
            send2.pready(i).unwrap();
        }
    });
    sched.run();
    assert!(matches!(
        send.wait(),
        Err(PartixError::TransferFailed { .. })
    ));
    assert!(send.error().is_some());
    assert_eq!(
        recv.arrived_count(),
        0,
        "a fully lossy wire delivers nothing"
    );
    let lossy = world.lossy_fabric().unwrap();
    assert!(
        lossy.exhausted() > 0,
        "loss must be attributed to exhaustion"
    );
    assert_eq!(lossy.retransmits(), 0, "retry_cnt = 0 means no retransmits");
    // Even a failed round leaves a reconciled ledger: every drop is
    // attributed (law 7) and the error completions balance the posts.
    world.check_invariants().assert_clean();
}

/// The halo application pattern (16 ranks, 64 concurrent channels) runs to
/// completion over the chaotic wire — `run_halo` panics internally if any
/// iteration fails to terminate.
#[test]
fn halo_pattern_survives_chaos() {
    for seed in [5u64, 6] {
        let mut partix = PartixConfig::with_aggregator(AggregatorKind::TimerPLogGp);
        partix.loss = Some(LossyConfig::chaos(0.05, seed));
        let mut cfg = HaloConfig::small(partix, 2048);
        cfg.warmup = 1;
        cfg.iters = 2;
        let r = run_halo(&cfg);
        assert!(r.mean_total_ns > 0.0);
    }
}

/// The Sweep3D wavefront pattern — where a lost corner message would stall
/// every downstream diagonal — also completes under chaos.
#[test]
fn sweep_pattern_survives_chaos() {
    let mut partix = PartixConfig::with_aggregator(AggregatorKind::PLogGp);
    partix.loss = Some(LossyConfig::chaos(0.05, 17));
    let cfg = SweepConfig {
        rows: 4,
        cols: 4,
        threads: 4,
        part_bytes: 1024,
        compute: SimDuration::from_micros(100),
        noise_frac: 0.01,
        warmup: 1,
        iters: 2,
        seed: 0x53EE9,
        partix,
    };
    let r = run_sweep(&cfg);
    assert!(r.mean_total_ns > 0.0);
}
