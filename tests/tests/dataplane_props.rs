//! Property tests over the zero-copy data plane:
//!
//! - batched posting of arbitrary gather mixes (multi-SGE, inline and
//!   non-inline, spilling past the inline segment capacity) is
//!   byte-identical to the reference assembly a plain per-`Vec` path would
//!   produce;
//! - inline payloads are snapshotted into pooled arena buffers at post
//!   time: scribbling the source after the post cannot corrupt delivery,
//!   under a clean wire or under chaos with retransmission — and
//!   retransmitted packets *reuse* their slot buffer (the arena get count
//!   scales with posts, never with retransmits);
//! - the arena ledger reconciles (laws 13/14) at the end of every case.
//!
//! The vendored proptest is deterministic (seeded from the test name), so
//! a green run is reproducible.

use std::sync::Arc;

use partix_sim::Scheduler;
use partix_verbs::{
    connect_pair, invariants, FabricParams, LossyConfig, LossyFabric, MemoryRegion, Network,
    Opcode, PostOptions, QpCaps, QueuePair, RecvWr, SendWr, Sge, SimFabric, WcStatus, INLINE_CAP,
};
use proptest::prelude::*;

/// Deterministic byte for segment `j` of message `i`.
fn seg_byte(i: usize, j: usize) -> u8 {
    (i as u8)
        .wrapping_mul(16)
        .wrapping_add(j as u8)
        .wrapping_add(1)
}

struct Endpoints {
    sched: Scheduler,
    net: Network,
    qa: Arc<QueuePair>,
    qb: Arc<QueuePair>,
    cqa: Arc<partix_verbs::CompletionQueue>,
    cqb: Arc<partix_verbs::CompletionQueue>,
    pda: partix_verbs::ProtectionDomain,
    pdb: partix_verbs::ProtectionDomain,
    a: partix_verbs::Context,
    b: partix_verbs::Context,
}

fn endpoints(loss: Option<LossyConfig>) -> Endpoints {
    let sched = Scheduler::new();
    let inner = SimFabric::new(sched.clone(), FabricParams::default());
    let net = match loss {
        Some(cfg) => Network::new(2, LossyFabric::simulated(inner, sched.clone(), cfg)),
        None => Network::new(2, inner),
    };
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    Endpoints {
        sched,
        net,
        qa,
        qb,
        cqa,
        cqb,
        pda,
        pdb,
        a,
        b,
    }
}

/// One message of a generated batch: gather segments carved sequentially
/// out of `src`, written contiguously into `dst`.
struct Msg {
    src: MemoryRegion,
    dst: MemoryRegion,
    lens: Vec<u32>,
    total: usize,
    inline: bool,
}

impl Msg {
    /// The reference assembly: what a plain per-`Vec` gather would send.
    fn reference(&self, i: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total);
        for (j, &len) in self.lens.iter().enumerate() {
            out.extend(std::iter::repeat_n(seg_byte(i, j), len as usize));
        }
        out
    }

    fn wr(&self, wr_id: u64) -> SendWr {
        let mut sg_list = Vec::new();
        let mut off = 0usize;
        for &len in &self.lens {
            sg_list.push(Sge {
                addr: self.src.addr_at(off),
                length: len,
                lkey: self.src.lkey(),
            });
            off += len as usize;
        }
        SendWr {
            wr_id,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list,
            remote_addr: self.dst.addr(),
            rkey: self.dst.rkey(),
            imm: Some(wr_id as u32),
            inline_data: self.inline,
            flow: 0,
        }
    }
}

fn build_msgs(ep: &Endpoints, mixes: &[Vec<u32>]) -> Vec<Msg> {
    mixes
        .iter()
        .enumerate()
        .map(|(i, lens)| {
            let total: usize = lens.iter().map(|&l| l as usize).sum();
            let src = ep.a.reg_mr(ep.pda, total).unwrap();
            let dst = ep.b.reg_mr(ep.pdb, total).unwrap();
            let mut off = 0usize;
            for (j, &len) in lens.iter().enumerate() {
                src.fill(off, len as usize, seg_byte(i, j)).unwrap();
                off += len as usize;
            }
            ep.qb.post_recv(RecvWr::bare(i as u64)).unwrap();
            // Inline snapshots are capped by `max_inline_data`; alternate so
            // both paths appear in most batches.
            let inline = total <= QpCaps::default().max_inline_data as usize && i % 2 == 0;
            Msg {
                src,
                dst,
                lens: lens.clone(),
                total,
                inline,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched gather mixes land byte-identical to the reference assembly.
    /// Segment counts run past [`INLINE_CAP`] (forcing the small-vec spill
    /// path), and inline messages are scribbled after the post — their
    /// pooled snapshot, not the live region, must be what arrives.
    #[test]
    fn batched_gather_matches_reference(
        mixes in prop::collection::vec(
            prop::collection::vec(1u32..=2500, 1..(INLINE_CAP * 2 + 1)),
            1..9,
        ),
    ) {
        let ep = endpoints(None);
        let msgs = build_msgs(&ep, &mixes);
        let wrs: Vec<SendWr> = msgs.iter().enumerate().map(|(i, m)| m.wr(i as u64)).collect();
        let granted = ep.qa.post_send_batch(&wrs, PostOptions::default()).unwrap();
        prop_assert_eq!(granted, wrs.len(), "batch under the WR cap must be granted whole");
        // Inline payloads were snapshotted at post time: clobber the source.
        for m in msgs.iter().filter(|m| m.inline) {
            m.src.fill(0, m.total, 0xFF).unwrap();
        }
        ep.sched.run();

        for i in 0..msgs.len() {
            let wc = ep.cqa.poll_one().unwrap_or_else(|| panic!("send {i} never completed"));
            prop_assert_eq!(wc.status, WcStatus::Success);
            prop_assert!(ep.cqb.poll_one().is_some(), "recv {} never fired", i);
        }
        for (i, m) in msgs.iter().enumerate() {
            let got = m.dst.read_vec(0, m.total).unwrap();
            prop_assert_eq!(got, m.reference(i), "message {} diverged from reference", i);
        }

        let snap = ep.net.state().telemetry_snapshot();
        let inline_posts = msgs.iter().filter(|m| m.inline).count() as u64;
        prop_assert_eq!(snap.arena.pool_gets, inline_posts);
        prop_assert_eq!(snap.arena.pool_returns, inline_posts, "all snapshots must come home");
        invariants::check_strict(&snap).assert_clean();
    }

    /// Under seeded chaos, retransmitted inline packets reuse their pooled
    /// slot buffer: delivery stays byte-correct even though the source was
    /// scribbled right after the post, and the arena get count equals the
    /// number of posts regardless of how many retransmissions the wire
    /// needed.
    #[test]
    fn chaos_retransmits_reuse_slot_buffers(
        drop_p in 0.0f64..=0.3,
        dup_p in 0.0f64..=0.5,
        seed in any::<u64>(),
        k in 1usize..=12,
        len in 1usize..=220,
    ) {
        let cfg = LossyConfig { drop_p, dup_p, delay_p: 0.5, max_delay_ns: 5_000, seed };
        let ep = endpoints(Some(cfg));
        let mixes: Vec<Vec<u32>> = (0..k).map(|_| vec![len as u32]).collect();
        let mut msgs = build_msgs(&ep, &mixes);
        for m in &mut msgs {
            m.inline = true; // every message takes the arena snapshot path
        }
        let wrs: Vec<SendWr> = msgs.iter().enumerate().map(|(i, m)| m.wr(i as u64)).collect();
        let granted = ep.qa.post_send_batch(&wrs, PostOptions::default()).unwrap();
        prop_assert_eq!(granted, k.min(QpCaps::default().max_send_wr as usize));
        for m in &msgs[..granted] {
            m.src.fill(0, m.total, 0xFF).unwrap();
        }
        ep.sched.run();
        // Anything the cap deferred goes out (and gets scribbled) next.
        if granted < k {
            let rest = ep.qa.post_send_batch(&wrs[granted..], PostOptions::default()).unwrap();
            prop_assert_eq!(rest, k - granted);
            for m in &msgs[granted..] {
                m.src.fill(0, m.total, 0xFF).unwrap();
            }
            ep.sched.run();
        }

        for i in 0..k {
            let wc = ep.cqa.poll_one().unwrap_or_else(|| panic!("send {i} never completed"));
            prop_assert_eq!(wc.status, WcStatus::Success);
        }
        for (i, m) in msgs.iter().enumerate() {
            let got = m.dst.read_vec(0, m.total).unwrap();
            prop_assert_eq!(got, m.reference(i), "message {} lost its snapshot", i);
        }

        let snap = ep.net.state().telemetry_snapshot();
        prop_assert_eq!(
            snap.arena.pool_gets, k as u64,
            "retransmits must reuse slot buffers, not take fresh ones"
        );
        prop_assert_eq!(snap.arena.pool_returns, k as u64);
        while ep.cqb.poll_one().is_some() {}
        invariants::check_strict(&ep.net.state().telemetry_snapshot()).assert_clean();
    }
}

/// A batch larger than the send-queue cap is granted exactly the free slot
/// count; the tail posts cleanly once completions return slots.
#[test]
fn oversized_batch_grants_cap_then_tail() {
    const K: usize = 20;
    let ep = endpoints(None);
    let mixes: Vec<Vec<u32>> = (0..K).map(|i| vec![64 + i as u32]).collect();
    let msgs = build_msgs(&ep, &mixes);
    let wrs: Vec<SendWr> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| m.wr(i as u64))
        .collect();
    let cap = QpCaps::default().max_send_wr as usize;
    let granted = ep.qa.post_send_batch(&wrs, PostOptions::default()).unwrap();
    assert_eq!(granted, cap, "full queue grants exactly the cap");
    ep.sched.run();
    let rest = ep
        .qa
        .post_send_batch(&wrs[granted..], PostOptions::default())
        .unwrap();
    assert_eq!(rest, K - cap);
    ep.sched.run();
    for (i, m) in msgs.iter().enumerate() {
        let got = m.dst.read_vec(0, m.total).unwrap();
        assert_eq!(got, m.reference(i), "message {i} corrupted");
    }
    assert_eq!(ep.qa.outstanding(), 0);
    while ep.cqa.poll_one().is_some() {}
    while ep.cqb.poll_one().is_some() {}
    invariants::check_strict(&ep.net.state().telemetry_snapshot()).assert_clean();
}

/// Deterministic heavy-loss run: the wire really retransmits, and the
/// arena still hands out exactly one buffer per post.
#[test]
fn heavy_loss_run_actually_retransmits() {
    const K: usize = 8;
    let cfg = LossyConfig {
        drop_p: 0.25,
        dup_p: 0.2,
        delay_p: 0.5,
        max_delay_ns: 5_000,
        seed: 0xDA7A,
    };
    let ep = endpoints(Some(cfg));
    let mixes: Vec<Vec<u32>> = (0..K).map(|_| vec![128]).collect();
    let mut msgs = build_msgs(&ep, &mixes);
    for m in &mut msgs {
        m.inline = true;
    }
    let wrs: Vec<SendWr> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| m.wr(i as u64))
        .collect();
    assert_eq!(
        ep.qa.post_send_batch(&wrs, PostOptions::default()).unwrap(),
        K
    );
    for m in &msgs {
        m.src.fill(0, m.total, 0xFF).unwrap();
    }
    ep.sched.run();
    let snap = ep.net.state().telemetry_snapshot();
    assert!(
        snap.wire.retransmits > 0,
        "25% drop over {K} transfers must retransmit at least once"
    );
    assert_eq!(snap.arena.pool_gets, K as u64);
    for (i, m) in msgs.iter().enumerate() {
        let got = m.dst.read_vec(0, m.total).unwrap();
        assert_eq!(got, m.reference(i), "message {i} corrupted under loss");
    }
}
