//! Shape tests for the paper's headline claims: each asserts the
//! *qualitative* result of one experiment (who wins, roughly by how much,
//! where crossovers fall) with reduced iteration counts. EXPERIMENTS.md
//! records the quantitative paper-vs-measured comparison from full runs.

use partix_core::{AggregatorKind, PartixConfig, SimDuration};
use partix_model::{table1, PLogGpModel, DEFAULT_DECISION_DELAY_NS};
use partix_workloads::overhead::{speedup, OverheadSweep};
use partix_workloads::perceived::PerceivedSweep;
use partix_workloads::sweep::{run_sweep, SweepConfig};

fn quick_overhead(
    kind: AggregatorKind,
    partitions: u32,
    sizes: Vec<usize>,
) -> Vec<partix_workloads::overhead::OverheadPoint> {
    let mut s = OverheadSweep::new(PartixConfig::with_aggregator(kind), partitions, sizes);
    s.warmup = 2;
    s.iters = 10;
    s.run()
}

/// Table I reproduces the paper's exact aggregation thresholds.
#[test]
fn claim_table1_thresholds() {
    let rows = table1(&PLogGpModel::niagara());
    let lookup = |bytes: usize| {
        rows.iter()
            .find(|r| r.message_bytes == bytes)
            .unwrap()
            .transport_partitions
    };
    assert_eq!(lookup(128 << 10), 1);
    assert_eq!(lookup(512 << 10), 2);
    assert_eq!(lookup(2 << 20), 4);
    assert_eq!(lookup(8 << 20), 8);
    assert_eq!(lookup(32 << 20), 16);
    assert_eq!(lookup(128 << 20), 32);
}

/// Fig. 8 (32 partitions): the aggregators beat the persistent baseline by
/// around 2x in the medium range and converge toward 1.0 at large sizes.
#[test]
fn claim_medium_message_speedup_32_partitions() {
    let sizes = vec![128 << 10, 64 << 20];
    let base = quick_overhead(AggregatorKind::Persistent, 32, sizes.clone());
    let ours = quick_overhead(AggregatorKind::PLogGp, 32, sizes);
    let sp = speedup(&base, &ours);
    assert!(
        sp[0].1 > 1.5 && sp[0].1 < 4.0,
        "128 KiB speedup should be ~2x (paper: 2.17x), got {}",
        sp[0].1
    );
    assert!(
        (sp[1].1 - 1.0).abs() < 0.15,
        "64 MiB speedup should approach 1.0 (bandwidth bound), got {}",
        sp[1].1
    );
}

/// Fig. 8 (128 partitions): oversubscription makes aggregation win big.
#[test]
fn claim_oversubscription_blowup_128_partitions() {
    let sizes = vec![128 << 10];
    let base = quick_overhead(AggregatorKind::Persistent, 128, sizes.clone());
    let ours = quick_overhead(AggregatorKind::PLogGp, 128, sizes);
    let sp = speedup(&base, &ours);
    assert!(
        sp[0].1 > 3.0,
        "128 partitions at 128 KiB should show a large win (paper: up to 8.8x), got {}",
        sp[0].1
    );
}

/// Fig. 9 ordering at a medium size: persistent and timer far above plain
/// PLogGP; everything above the single-threaded hardware line.
#[test]
fn claim_perceived_bandwidth_ordering() {
    let run = |kind: AggregatorKind, delta_us: Option<u64>| {
        let mut cfg = PartixConfig::with_aggregator(kind);
        if let Some(d) = delta_us {
            cfg.delta = SimDuration::from_micros(d);
        }
        let mut s = PerceivedSweep::new(cfg, 32, vec![8 << 20]);
        s.warmup = 1;
        s.iters = 5;
        s.run().remove(0).bandwidth
    };
    let hw = PartixConfig::default().fabric.link_bandwidth();
    let persistent = run(AggregatorKind::Persistent, None);
    let ploggp = run(AggregatorKind::PLogGp, None);
    let timer = run(AggregatorKind::TimerPLogGp, Some(3_000));
    assert!(
        persistent > 2.0 * ploggp,
        "persistent {persistent:.3e} vs ploggp {ploggp:.3e}"
    );
    assert!(
        timer > 2.0 * ploggp,
        "timer {timer:.3e} vs ploggp {ploggp:.3e}"
    );
    for (name, bw) in [
        ("persistent", persistent),
        ("ploggp", ploggp),
        ("timer", timer),
    ] {
        assert!(
            bw > hw * 0.9,
            "{name} perceived bandwidth {bw:.3e} should not fall below the hw line {hw:.3e} at 8 MiB"
        );
    }
}

/// Fig. 13: the timer is robust to a 10x delta mis-tuning (paper: at most
/// 6.15% between 10 us and 100 us).
#[test]
fn claim_delta_window_is_forgiving() {
    let bw = |delta_us: u64| {
        let mut cfg = PartixConfig::with_aggregator(AggregatorKind::TimerPLogGp);
        cfg.delta = SimDuration::from_micros(delta_us);
        let mut s = PerceivedSweep::new(cfg, 32, vec![8 << 20]);
        s.warmup = 1;
        s.iters = 5;
        s.run().remove(0).bandwidth
    };
    let (b10, b35, b100) = (bw(10), bw(35), bw(100));
    let spread = (b10.max(b35).max(b100) - b10.min(b35).min(b100)) / b35;
    assert!(
        spread < 0.10,
        "perceived bandwidth should vary <10% across delta in [10, 100] us, got {:.1}%",
        spread * 100.0
    );
}

/// Fig. 14b: at medium message sizes on the 1024-core sweep, both designs
/// beat the baseline and the timer beats plain PLogGP.
#[test]
fn claim_sweep_speedup_ordering() {
    let comm = |kind: AggregatorKind| {
        let mut cfg = SweepConfig::paper_1024(PartixConfig::with_aggregator(kind), (32 << 10) / 16);
        cfg.compute = SimDuration::from_millis(1);
        cfg.noise_frac = 0.04;
        cfg.warmup = 1;
        cfg.iters = 3;
        run_sweep(&cfg).mean_comm_ns
    };
    let persistent = comm(AggregatorKind::Persistent);
    let ploggp = comm(AggregatorKind::PLogGp);
    let timer = comm(AggregatorKind::TimerPLogGp);
    assert!(
        persistent / ploggp > 1.2,
        "ploggp should beat persistent at 32 KiB (got {:.2}x)",
        persistent / ploggp
    );
    assert!(
        timer <= ploggp * 1.02,
        "timer ({timer}) should be at least as good as ploggp ({ploggp})"
    );
}

/// The Netgauge→PLogGP loop on the simulated fabric yields monotone
/// aggregation decisions that split large messages.
#[test]
fn claim_netgauge_fit_loop() {
    use partix_model::netgauge::assess;
    use partix_workloads::netgauge_provider::SimNetgauge;
    let mut ng = SimNetgauge::new(PartixConfig::default());
    let fitted = PLogGpModel::new(assess(&mut ng).params);
    let small = fitted.optimal_transport_partitions(64 << 10, 32, DEFAULT_DECISION_DELAY_NS);
    let large = fitted.optimal_transport_partitions(256 << 20, 32, DEFAULT_DECISION_DELAY_NS);
    assert!(small <= 4, "64 KiB should mostly aggregate, got {small}");
    assert!(large >= 8, "256 MiB should split, got {large}");
}

/// Fig. 12 scale: the estimated minimum delta for 32 threads lands near the
/// paper's ~35 us.
#[test]
fn claim_min_delta_scale() {
    use partix_profiler::{min_delta_ns, Profiler};
    use partix_workloads::{run_pt2pt_with_sink, Pt2PtConfig, ThreadTiming};
    use std::sync::Arc;

    let mut partix = PartixConfig::with_aggregator(AggregatorKind::PLogGp);
    partix.fabric.copy_data = false;
    let cfg = Pt2PtConfig {
        partix,
        partitions: 32,
        part_bytes: (8 << 20) / 32,
        warmup: 1,
        iters: 5,
        timing: ThreadTiming::perceived_bw(100, 0.04),
        seed: 42,
    };
    let profiler = Arc::new(Profiler::new());
    let r = run_pt2pt_with_sink(&cfg, Some(profiler.clone()));
    let trace = profiler.send_trace(r.send_req_id).unwrap();
    let deltas: Vec<f64> = trace
        .rounds
        .iter()
        .skip(1)
        .filter_map(min_delta_ns)
        .collect();
    let mean_us = deltas.iter().sum::<f64>() / deltas.len() as f64 / 1e3;
    assert!(
        (15.0..60.0).contains(&mean_us),
        "min delta for 32 threads should be ~35 us (paper), got {mean_us:.1} us"
    );
}
