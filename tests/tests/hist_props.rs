//! Property tests over the log-bucketed latency histogram
//! (`partix_telemetry::LogHistogram`), the storage behind every per-stage
//! residency distribution in the causal-tracing subsystem:
//!
//! - count and sum are conserved exactly for arbitrary inputs;
//! - snapshot buckets are monotone, disjoint, and each holds only values
//!   inside its `[lo, hi)` bounds;
//! - `merge(a, b)` is indistinguishable from recording the union;
//! - quantiles are monotone in `q`, bracketed by min and max, and
//!   `quantile(1.0)` is the exact maximum.
//!
//! The vendored proptest is deterministic (seeded from the test name, no
//! shrinking), so a green run is reproducible.

use partix_verbs::telemetry::LogHistogram;
use proptest::prelude::*;

/// Arbitrary latency samples: spread across the full bucket range
/// (sub-octave linear values through multi-second nanosecond counts)
/// while keeping sums comfortably inside u64. The class selector steers
/// each raw draw into one of four magnitude bands.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u8..4, 0u64..(1 << 48)), 1..64).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(class, raw)| match class {
                0 => raw % 16,                    // linear sub-bucket region
                1 => 16 + raw % (4096 - 16),      // low octaves
                2 => 1_000 + raw % 10_000_000,    // typical stage residencies
                _ => (1 << 40) + raw % (1 << 47), // pathological stalls
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count/sum conservation and exact max tracking.
    #[test]
    fn count_sum_max_conserved(vals in samples()) {
        let h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, vals.len() as u64);
        prop_assert_eq!(snap.sum, vals.iter().sum::<u64>());
        prop_assert_eq!(snap.max, vals.iter().copied().max().unwrap());
        // The buckets are a partition of the samples: their counts add up.
        prop_assert_eq!(
            snap.buckets.iter().map(|b| b.count).sum::<u64>(),
            snap.count
        );
    }

    /// Bucket bounds are monotone and disjoint, and every recorded value
    /// falls inside the bounds of exactly the bucket population it joined.
    #[test]
    fn buckets_are_monotone_and_bounding(vals in samples()) {
        let h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        for w in snap.buckets.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo, "buckets overlap or reorder");
        }
        for b in &snap.buckets {
            prop_assert!(b.lo < b.hi);
            prop_assert!(b.count > 0, "snapshot carries an empty bucket");
            // The bucket's population is exactly the samples in its bounds.
            let expect = vals.iter().filter(|&&v| b.lo <= v && v < b.hi).count();
            prop_assert_eq!(b.count, expect as u64);
        }
    }

    /// `merge` is union: merging two histograms produces the same snapshot
    /// as recording every sample into one.
    #[test]
    fn merge_equals_union(a in samples(), b in samples()) {
        let ha = LogHistogram::new();
        let hb = LogHistogram::new();
        let hu = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        let merged = ha.snapshot();
        let union = hu.snapshot();
        prop_assert_eq!(merged.count, union.count);
        prop_assert_eq!(merged.sum, union.sum);
        prop_assert_eq!(merged.max, union.max);
        prop_assert_eq!(merged.buckets, union.buckets);
    }

    /// Quantiles are monotone in `q`, live inside `[min, max]`, and the
    /// extremes are tight: `quantile(1.0)` is the exact maximum.
    #[test]
    fn quantiles_are_monotone_and_bracketed(vals in samples()) {
        let h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let got: Vec<u64> = qs.iter().map(|&q| snap.quantile(q)).collect();
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", got);
        }
        let max = vals.iter().copied().max().unwrap();
        prop_assert!(got[0] <= max);
        prop_assert_eq!(*got.last().unwrap(), max);
        // Every quantile is at least the smallest sample's bucket floor.
        let min = vals.iter().copied().min().unwrap();
        prop_assert!(got[0] >= snap.buckets[0].lo && snap.buckets[0].lo <= min);
    }
}
