//! Failure injection through the full stack: injected wire faults must
//! surface as error completions, poisoned requests, and QP error states —
//! never as silent data loss.

use std::sync::Arc;

use partix_core::{AggregatorKind, PartixConfig, PartixError, ReliabilityConfig, World};
use partix_verbs::{FaultPlan, FaultyFabric, InstantFabric, WcStatus};

fn faulty_world(plan: FaultPlan) -> (World, Arc<FaultyFabric>) {
    let faulty = FaultyFabric::new(InstantFabric::new(), plan, WcStatus::RemoteAccessError);
    // Reliability off: these tests assert the legacy first-error-poisons
    // semantics (QP recovery would otherwise absorb the injected fault).
    let mut config = PartixConfig::with_aggregator(AggregatorKind::Persistent);
    config.reliability = ReliabilityConfig::disabled();
    let world = World::with_fabric(2, config, faulty.clone());
    (world, faulty)
}

#[test]
fn injected_fault_poisons_the_send_request() {
    // Fail the third WR of the round.
    let (world, faulty) = faulty_world(FaultPlan::Indices(vec![2]));
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sbuf = p0.alloc_buffer(8 * 128).unwrap();
    let rbuf = p1.alloc_buffer(8 * 128).unwrap();
    let send = p0.psend_init(&sbuf, 8, 128, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, 8, 128, 0, 0).unwrap();
    recv.start().unwrap();
    send.start().unwrap();
    for i in 0..8 {
        send.pready(i).unwrap();
    }
    // The sender's wait reports the failure rather than hanging or lying.
    // Depending on progress timing the first observed error is either the
    // faulted WR's completion or the QP-already-dead rejection of a later
    // post; both are honest.
    assert!(matches!(
        send.wait(),
        Err(PartixError::TransferFailed { .. })
    ));
    assert!(send.error().is_some());
    assert_eq!(faulty.injected(), 1);
    // The receiver is missing the faulted partition and the later
    // partitions of the now-dead QP (round-robin: 2, 4, 6 shared QP 0).
    assert!(!recv.test());
    assert_eq!(recv.arrived_count(), 5);
    for lost in [2u32, 4, 6] {
        assert!(
            !recv.parrived(lost).unwrap(),
            "partition {lost} should be lost"
        );
    }
    for ok in [0u32, 1, 3, 5, 7] {
        assert!(
            recv.parrived(ok).unwrap(),
            "partition {ok} should have arrived"
        );
    }
    // The poisoned round still leaves a reconciled ledger: the injected
    // fault is attributed on the wire and the error completion balances
    // the posts.
    let snap = world.telemetry_snapshot();
    assert_eq!(snap.wire.injected_faults, faulty.injected());
    partix_core::invariants::check(&snap).assert_clean();
}

#[test]
fn clean_rounds_before_the_fault_are_unaffected() {
    // Fault only the 17th transfer: two full 8-partition rounds pass, the
    // third poisons.
    let (world, _faulty) = faulty_world(FaultPlan::Indices(vec![16]));
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sbuf = p0.alloc_buffer(8 * 64).unwrap();
    let rbuf = p1.alloc_buffer(8 * 64).unwrap();
    let send = p0.psend_init(&sbuf, 8, 64, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, 8, 64, 0, 0).unwrap();
    for round in 0..2 {
        recv.start().unwrap();
        send.start().unwrap();
        for i in 0..8 {
            sbuf.fill(i as usize * 64, 64, round * 10 + i as u8)
                .unwrap();
            send.pready(i as u32).unwrap();
        }
        send.wait().unwrap();
        recv.wait().unwrap();
        for i in 0..8 {
            assert_eq!(
                rbuf.read_vec(i as usize * 64, 1).unwrap(),
                vec![round * 10 + i as u8]
            );
        }
    }
    recv.start().unwrap();
    send.start().unwrap();
    for i in 0..8 {
        send.pready(i).unwrap();
    }
    assert!(send.wait().is_err());
    world.check_invariants().assert_clean();
}

#[test]
fn aggregated_fault_loses_the_whole_group() {
    // With full aggregation (one WR for all partitions), a single fault
    // costs every partition — the blast-radius trade-off of aggregation.
    let faulty = FaultyFabric::new(
        InstantFabric::new(),
        FaultPlan::EveryNth(1),
        WcStatus::RemoteAccessError,
    );
    let world = World::with_fabric(
        2,
        PartixConfig::with_aggregator(AggregatorKind::PLogGp),
        faulty,
    );
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sbuf = p0.alloc_buffer(32 * 512).unwrap();
    let rbuf = p1.alloc_buffer(32 * 512).unwrap();
    let send = p0.psend_init(&sbuf, 32, 512, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, 32, 512, 0, 0).unwrap();
    assert_eq!(send.plan().unwrap().groups, 1, "16 KiB fully aggregates");
    recv.start().unwrap();
    send.start().unwrap();
    for i in 0..32 {
        send.pready(i).unwrap();
    }
    assert!(send.wait().is_err());
    assert_eq!(recv.arrived_count(), 0, "nothing arrived");
    world.check_invariants().assert_clean();
}

#[test]
fn posting_onto_a_dead_qp_retires_the_wr_and_terminates() {
    // All traffic shares one QP; the very first WR is eaten, driving the QP
    // to the error state. Every later pready then posts onto a dead QP and
    // must hit `submit`'s poisoned path: the WR is retired immediately (no
    // completion will ever come), the error is recorded, and the round
    // terminates instead of hanging with wr_posted > wr_completed.
    let faulty = FaultyFabric::new(
        InstantFabric::new(),
        FaultPlan::Indices(vec![0]),
        WcStatus::RemoteAccessError,
    );
    let mut config = PartixConfig::with_aggregator(AggregatorKind::Persistent);
    config.reliability = ReliabilityConfig::disabled();
    config.persistent_qps = 1;
    let world = World::with_fabric(2, config, faulty.clone());
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sbuf = p0.alloc_buffer(8 * 64).unwrap();
    let rbuf = p1.alloc_buffer(8 * 64).unwrap();
    let send = p0.psend_init(&sbuf, 8, 64, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, 8, 64, 0, 0).unwrap();
    recv.start().unwrap();
    send.start().unwrap();
    for i in 0..8 {
        send.pready(i).unwrap();
    }
    assert!(matches!(
        send.wait(),
        Err(PartixError::TransferFailed { .. })
    ));
    assert!(send.error().is_some());
    // Only the faulted WR reached the wire; the rest were rejected by the
    // dead QP and retired in software.
    assert_eq!(faulty.submitted(), 1);
    assert_eq!(faulty.injected(), 1);
    assert_eq!(recv.arrived_count(), 0);
    // Software-retired WRs (rejected by the dead QP) never touched the
    // wire and must not appear anywhere in the wire ledger.
    let snap = world.telemetry_snapshot();
    assert_eq!(snap.wire.injected_faults, 1);
    partix_core::invariants::check(&snap).assert_clean();
}

#[test]
fn qp_recovery_absorbs_an_injected_fault() {
    // Same single-QP setup, but with reliability on: the error completion
    // triggers QP recovery (Error → Reset → Init → RTR → RTS) and the failed
    // WR is re-posted. FaultyFabric only eats submission index 0, so the
    // retry passes and the round completes with full data integrity.
    let faulty = FaultyFabric::new(
        InstantFabric::new(),
        FaultPlan::Indices(vec![0]),
        WcStatus::RemoteAccessError,
    );
    let mut config = PartixConfig::with_aggregator(AggregatorKind::Persistent);
    config.persistent_qps = 1;
    let world = World::with_fabric(2, config, faulty.clone());
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sbuf = p0.alloc_buffer(8 * 64).unwrap();
    let rbuf = p1.alloc_buffer(8 * 64).unwrap();
    let send = p0.psend_init(&sbuf, 8, 64, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, 8, 64, 0, 0).unwrap();
    recv.start().unwrap();
    send.start().unwrap();
    for i in 0..8u32 {
        sbuf.fill(i as usize * 64, 64, 0xC0 + i as u8).unwrap();
        send.pready(i).unwrap();
    }
    send.wait().unwrap();
    recv.wait().unwrap();
    assert_eq!(send.error(), None);
    assert_eq!(send.recoveries(), 1, "exactly one recovery cycle");
    assert_eq!(faulty.injected(), 1);
    assert_eq!(recv.arrived_count(), 8);
    for i in 0..8u32 {
        assert_eq!(
            rbuf.read_vec(i as usize * 64, 64).unwrap(),
            vec![0xC0 + i as u8; 64],
            "partition {i} bytes"
        );
    }
    // Recovery accounting: one injected fault, one error completion, one
    // QP recovery — and a ledger that still balances to zero leaks.
    let snap = world.telemetry_snapshot();
    assert_eq!(snap.wire.injected_faults, 1);
    assert_eq!(snap.qps.iter().map(|q| q.recoveries).sum::<u64>(), 1);
    partix_core::invariants::check(&snap).assert_clean();
}
