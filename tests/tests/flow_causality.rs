//! Flow-ID causality under chaos: on a lossy wire (seeded drops,
//! duplicates, and delays with timer-based retransmission), every
//! partition that reports `Parrived` must belong to a flow whose causal
//! span chain is complete and monotonically timestamped — `post ≤ wire ≤
//! CQE ≤ arrival` — including flows that crossed the wire more than once
//! via retransmission or duplicate injection.

use partix_core::telemetry::FlowStage;
use partix_core::{AggregatorKind, LossyConfig, PartixConfig};
use partix_profiler::assemble_chains;
use partix_sim::split_seed;
use partix_workloads::{run_traced, Pt2PtConfig, ThreadTiming};

fn chaos_cfg(drop_p: f64, seed: u64) -> Pt2PtConfig {
    let mut partix = PartixConfig::with_aggregator(AggregatorKind::TimerPLogGp);
    partix.fabric.copy_data = false;
    partix.loss = Some(LossyConfig::chaos(
        drop_p,
        split_seed(seed, "flow-causality", 0),
    ));
    Pt2PtConfig {
        partix,
        partitions: 16,
        part_bytes: 4096,
        warmup: 1,
        iters: 4,
        timing: ThreadTiming::overhead(),
        seed,
    }
}

#[test]
fn every_arrived_flow_has_a_complete_monotone_chain_under_chaos() {
    let mut saw_retransmit = false;
    for seed in [3, 17, 99] {
        let art = run_traced(&chaos_cfg(0.08, seed));
        assert!(art.result.error.is_none(), "chaos run failed (seed {seed})");
        saw_retransmit |= art.result.retransmits > 0;

        let chains = assemble_chains(&art.flows);
        assert!(!chains.is_empty(), "traced chaos run produced no flows");
        // Every posted flow arrived (the reliability layer guarantees
        // delivery), and every arrived flow's chain is complete and
        // monotone — including retransmitted ones.
        let violations = art.chain_violations();
        assert!(
            violations.is_empty(),
            "seed {seed}: {} chain violations:\n{}",
            violations.len(),
            violations.join("\n")
        );
        for c in &chains {
            assert!(
                c.arrived(),
                "seed {seed}: flow {} was posted but never arrived",
                c.flow
            );
        }
        // Flows the lossy wire hit more than once keep ONE causal identity:
        // a retransmitted flow has extra wire submissions, and its chain
        // still validated above.
        let resubmitted = chains.iter().filter(|c| c.resubmissions() > 0).count();
        if art.result.retransmits + art.result.duplicates > 0 {
            assert!(
                resubmitted > 0,
                "seed {seed}: wire reported retransmits/duplicates but no flow \
                 recorded a second submission"
            );
        }
    }
    assert!(
        saw_retransmit,
        "no seed exercised retransmission — raise drop_p so the property is non-vacuous"
    );
}

#[test]
fn flow_ids_are_unique_and_dense_per_run() {
    let art = run_traced(&chaos_cfg(0.05, 7));
    let chains = assemble_chains(&art.flows);
    // One chain per posted WR, ids minted 1..=N with no reuse across
    // retransmits (a re-posted WR keeps its original flow).
    assert_eq!(chains.len() as u64, art.result.total_wrs);
    let posted = art
        .flows
        .iter()
        .filter(|e| e.stage == FlowStage::Posted)
        .count() as u64;
    assert_eq!(posted, art.result.total_wrs, "exactly one Posted per WR");
    let mut ids: Vec<u64> = chains.iter().map(|c| c.flow).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len() as u64,
        art.result.total_wrs,
        "flow ids are unique"
    );
}

#[test]
fn chaos_tracing_does_not_change_results() {
    let cfg = chaos_cfg(0.08, 23);
    let plain = partix_workloads::run_pt2pt(&cfg);
    let traced = run_traced(&cfg);
    let t1: Vec<u64> = plain.rounds.iter().map(|r| r.total().as_nanos()).collect();
    let t2: Vec<u64> = traced
        .result
        .rounds
        .iter()
        .map(|r| r.total().as_nanos())
        .collect();
    assert_eq!(
        t1, t2,
        "flow tracing must not perturb virtual time, even under chaos"
    );
    assert_eq!(plain.retransmits, traced.result.retransmits);
    assert_eq!(plain.drops, traced.result.drops);
}
