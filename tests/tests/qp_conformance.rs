//! QP state-machine conformance: every one of the 25 `(from, to)` pairs of
//! the RESET → INIT → RTR → RTS → ERROR machine is exercised against a
//! fresh queue pair. Legal transitions must succeed and land in the target
//! state; illegal ones must return `VerbsError::InvalidTransition` with the
//! exact offending pair and leave the QP untouched.
//!
//! The legal set is written out here independently of the implementation's
//! `can_transition_to`, so a regression in either direction (a transition
//! wrongly allowed, or wrongly rejected) fails the suite.

use std::sync::Arc;

use partix_verbs::{
    connect_pair, Context, InstantFabric, Network, Opcode, PeerId, QpCaps, QpState, QueuePair,
    RecvWr, SendWr, Sge, VerbsError,
};

const STATES: [QpState; 5] = [
    QpState::Reset,
    QpState::Init,
    QpState::ReadyToReceive,
    QpState::ReadyToSend,
    QpState::Error,
];

/// The specification's transition matrix (libibverbs RC semantics as the
/// paper's runtime uses them): the forward setup chain RESET → INIT → RTR
/// → RTS, plus "any state may be torn down to RESET" and "any state may
/// fault to ERROR".
fn legal(from: QpState, to: QpState) -> bool {
    matches!(
        (from, to),
        (QpState::Reset, QpState::Init)
            | (QpState::Init, QpState::ReadyToReceive)
            | (QpState::ReadyToReceive, QpState::ReadyToSend)
            | (_, QpState::Error)
            | (_, QpState::Reset)
    )
}

/// A fresh single-node network with one QP (self-loop peer is irrelevant:
/// state transitions never touch the wire).
fn fresh_qp() -> (Context, Arc<QueuePair>) {
    let net = Network::new(1, InstantFabric::new());
    let ctx = net.open(0).unwrap();
    let pd = ctx.alloc_pd();
    let qp = ctx
        .create_qp(pd, ctx.create_cq(), ctx.create_cq(), QpCaps::default())
        .unwrap();
    (ctx, qp)
}

/// Drive a fresh QP into `target` via the setup chain.
fn qp_in_state(target: QpState) -> (Context, Arc<QueuePair>) {
    let (ctx, qp) = fresh_qp();
    let chain: &[QpState] = match target {
        QpState::Reset => &[],
        QpState::Init => &[QpState::Init],
        QpState::ReadyToReceive => &[QpState::Init, QpState::ReadyToReceive],
        QpState::ReadyToSend => &[QpState::Init, QpState::ReadyToReceive, QpState::ReadyToSend],
        QpState::Error => &[QpState::Error],
    };
    for &s in chain {
        qp.modify(s).unwrap_or_else(|e| panic!("setup {s:?}: {e}"));
    }
    assert_eq!(qp.state(), target, "setup chain failed");
    (ctx, qp)
}

/// The exhaustive 25-pair sweep.
#[test]
fn all_25_transition_pairs_conform() {
    let mut legal_seen = 0;
    let mut illegal_seen = 0;
    for from in STATES {
        for to in STATES {
            let (_ctx, qp) = qp_in_state(from);
            let res = qp.modify(to);
            if legal(from, to) {
                legal_seen += 1;
                assert!(res.is_ok(), "{from:?} -> {to:?} must be legal, got {res:?}");
                assert_eq!(qp.state(), to, "{from:?} -> {to:?} landed wrong");
            } else {
                illegal_seen += 1;
                match res {
                    Err(VerbsError::InvalidTransition { from: f, to: t }) => {
                        assert_eq!((f, t), (from, to), "error payload mismatch");
                    }
                    other => panic!("{from:?} -> {to:?} must be InvalidTransition, got {other:?}"),
                }
                assert_eq!(
                    qp.state(),
                    from,
                    "a rejected transition must not change state"
                );
            }
        }
    }
    // The matrix itself: 3 forward edges + 5 teardowns + 5 faults = 13
    // legal (RESET and ERROR self-loops counted once each), 12 illegal.
    assert_eq!(legal_seen, 13);
    assert_eq!(illegal_seen, 12);
}

/// The `modify_to_rtr` / `modify_to_rts` wrappers enforce the same machine
/// as the raw `modify` they delegate to.
#[test]
fn rtr_rts_wrappers_enforce_the_machine() {
    let peer = PeerId { node: 0, qp_num: 1 };

    // RTR straight from RESET skips INIT: rejected, and no peer recorded.
    let (_ctx, qp) = qp_in_state(QpState::Reset);
    assert!(matches!(
        qp.modify_to_rtr(peer),
        Err(VerbsError::InvalidTransition {
            from: QpState::Reset,
            to: QpState::ReadyToReceive,
        })
    ));
    assert_eq!(qp.state(), QpState::Reset);

    // RTS straight from INIT skips RTR: rejected.
    let (_ctx, qp) = qp_in_state(QpState::Init);
    assert!(matches!(
        qp.modify_to_rts(),
        Err(VerbsError::InvalidTransition {
            from: QpState::Init,
            to: QpState::ReadyToSend,
        })
    ));

    // The legal chain through the wrappers works end to end.
    let (_ctx, qp) = qp_in_state(QpState::Init);
    qp.modify_to_rtr(peer).unwrap();
    qp.modify_to_rts().unwrap();
    assert_eq!(qp.state(), QpState::ReadyToSend);
}

/// After a fault, the only way forward is the full teardown chain — exactly
/// the recovery cycle `recover_qp` performs.
#[test]
fn error_recovers_only_through_reset() {
    let (_ctx, qp) = qp_in_state(QpState::Error);
    for to in [QpState::Init, QpState::ReadyToReceive, QpState::ReadyToSend] {
        assert!(
            matches!(qp.modify(to), Err(VerbsError::InvalidTransition { .. })),
            "ERROR -> {to:?} must be rejected"
        );
    }
    qp.modify(QpState::Reset).unwrap();
    qp.modify(QpState::Init).unwrap();
    qp.modify_to_rtr(PeerId { node: 0, qp_num: 1 }).unwrap();
    qp.modify_to_rts().unwrap();
    assert_eq!(qp.state(), QpState::ReadyToSend);
}

/// Work-request posting is gated on the state machine: sends need RTS,
/// receives need at least INIT.
#[test]
fn posting_is_gated_on_state() {
    let net = Network::new(2, InstantFabric::new());
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let qa = a
        .create_qp(pda, a.create_cq(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), b.create_cq(), QpCaps::default())
        .unwrap();
    let src = a.reg_mr(pda, 64).unwrap();
    let dst = b.reg_mr(pdb, 64).unwrap();
    let send_wr = || SendWr {
        wr_id: 0,
        opcode: Opcode::RdmaWriteWithImm,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: 64,
            lkey: src.lkey(),
        }],
        remote_addr: dst.addr(),
        rkey: dst.rkey(),
        imm: Some(0),
        inline_data: false,
        flow: 0,
    };

    // RESET: both directions rejected with the honest state report.
    assert!(matches!(
        qa.post_send(send_wr()),
        Err(VerbsError::InvalidQpState {
            actual: QpState::Reset,
            required: QpState::ReadyToSend,
        })
    ));
    assert!(matches!(
        qb.post_recv(RecvWr::bare(0)),
        Err(VerbsError::InvalidQpState {
            actual: QpState::Reset,
            ..
        })
    ));

    // INIT: receives become legal (pre-posting before RTR is the idiomatic
    // verbs setup order); sends are still rejected.
    qa.modify(QpState::Init).unwrap();
    qb.modify(QpState::Init).unwrap();
    qb.post_recv(RecvWr::bare(0)).unwrap();
    assert!(matches!(
        qa.post_send(send_wr()),
        Err(VerbsError::InvalidQpState {
            actual: QpState::Init,
            required: QpState::ReadyToSend,
        })
    ));

    // Fully connected: the send goes through and none of the rejected
    // posts above leaked a slot or a recv entry.
    qa.modify_to_rtr(PeerId {
        node: qb.node(),
        qp_num: qb.qp_num(),
    })
    .unwrap();
    qb.modify_to_rtr(PeerId {
        node: qa.node(),
        qp_num: qa.qp_num(),
    })
    .unwrap();
    qa.modify_to_rts().unwrap();
    qb.modify_to_rts().unwrap();
    qa.post_send(send_wr()).unwrap();
    assert_eq!(
        qa.outstanding(),
        0,
        "instant fabric completes synchronously"
    );
    assert_eq!(qb.recv_queue_depth(), 0, "the one recv WR was consumed");

    // The rejected posts must not have been counted as accepted work: the
    // ledger still reconciles.
    partix_verbs::invariants::check(&net.state().telemetry_snapshot()).assert_clean();
}

/// `connect_pair` is the canonical legal walk; doing it twice must fail at
/// the first re-walked edge without corrupting the established state.
#[test]
fn double_connect_is_rejected_cleanly() {
    let net = Network::new(2, InstantFabric::new());
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let qa = a
        .create_qp(pda, a.create_cq(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), b.create_cq(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    assert!(matches!(
        connect_pair(&qa, &qb),
        Err(VerbsError::InvalidTransition {
            from: QpState::ReadyToSend,
            to: QpState::Init,
        })
    ));
    assert_eq!(qa.state(), QpState::ReadyToSend, "still connected");
    assert_eq!(qb.state(), QpState::ReadyToSend);
}
