//! Regression pins for the 16-outstanding-WR-per-QP cap (the ConnectX-5
//! class limit the paper designs around): the cap rejects the 17th post
//! without mis-counting it, retransmission recycles slots rather than
//! leaking or double-counting them, ghost duplicates never double-release,
//! and error/recovery cycles return the slot count to zero.

use partix_sim::Scheduler;
use partix_verbs::{
    connect_pair, invariants, FabricParams, FaultPlan, FaultyFabric, InstantFabric, LossyConfig,
    LossyFabric, Network, Opcode, QpCaps, QpState, RecvWr, SendWr, Sge, SimFabric, VerbsError,
    WcStatus,
};

const LEN: usize = 64;

struct Pair {
    net: Network,
    qa: std::sync::Arc<partix_verbs::QueuePair>,
    qb: std::sync::Arc<partix_verbs::QueuePair>,
    cqa: std::sync::Arc<partix_verbs::CompletionQueue>,
    src: partix_verbs::MemoryRegion,
    dst: partix_verbs::MemoryRegion,
}

/// Two connected nodes over `fabric`, with one `LEN`-byte region per side.
fn pair(fabric: std::sync::Arc<dyn partix_verbs::Fabric>) -> Pair {
    let net = Network::new(2, fabric);
    let a = net.open(0).unwrap();
    let b = net.open(1).unwrap();
    let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
    let (cqa, cqb) = (a.create_cq(), b.create_cq());
    let qa = a
        .create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default())
        .unwrap();
    let qb = b
        .create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default())
        .unwrap();
    connect_pair(&qa, &qb).unwrap();
    let src = a.reg_mr(pda, LEN).unwrap();
    let dst = b.reg_mr(pdb, LEN).unwrap();
    src.fill(0, LEN, 0x77).unwrap();
    Pair {
        net,
        qa,
        qb,
        cqa,
        src,
        dst,
    }
}

impl Pair {
    fn post(&self, wr_id: u64) -> partix_verbs::Result<()> {
        self.qa.post_send(SendWr {
            wr_id,
            opcode: Opcode::RdmaWriteWithImm,
            sg_list: vec![Sge {
                addr: self.src.addr(),
                length: LEN as u32,
                lkey: self.src.lkey(),
            }],
            remote_addr: self.dst.addr(),
            rkey: self.dst.rkey(),
            imm: Some(wr_id as u32),
            inline_data: false,
            flow: 0,
        })
    }
}

/// The 17th concurrent post is rejected with the cap in the error, claims
/// no slot, and is not counted as accepted work in the ledger.
#[test]
fn seventeenth_post_is_rejected_without_miscounting() {
    // A SimFabric without running the scheduler: completions stay pending,
    // so posted WRs pile up against the cap.
    let sched = Scheduler::new();
    let p = pair(SimFabric::new(sched.clone(), FabricParams::default()));
    for i in 0..16 {
        p.qb.post_recv(RecvWr::bare(i)).unwrap();
    }
    for i in 0..16u64 {
        p.post(i)
            .unwrap_or_else(|e| panic!("post {i} within cap: {e}"));
    }
    assert_eq!(p.qa.outstanding(), 16, "cap exactly filled");
    assert_eq!(
        p.post(16),
        Err(VerbsError::SendQueueFull {
            max_outstanding: 16
        })
    );
    assert_eq!(
        p.qa.outstanding(),
        16,
        "rejected post must not claim a slot"
    );
    {
        let snap = p.net.state().telemetry_snapshot();
        let qp = snap.qps.iter().find(|q| q.qp_num == p.qa.qp_num()).unwrap();
        assert_eq!(qp.send_posted, 16, "rejected post counted as accepted");
        assert_eq!(qp.outstanding, 16, "snapshot sees the live slot count");
    }

    // Draining the wire frees every slot; the queue is fully reusable.
    sched.run();
    assert_eq!(p.qa.outstanding(), 0);
    for _ in 0..16 {
        assert_eq!(p.cqa.poll_one().unwrap().status, WcStatus::Success);
    }
    p.qb.post_recv(RecvWr::bare(16)).unwrap();
    p.post(17).unwrap();
    sched.run();
    assert_eq!(p.cqa.poll_one().unwrap().status, WcStatus::Success);
    invariants::check(&p.net.state().telemetry_snapshot()).assert_clean();
}

/// Retransmission must not double-count slots: a WR that is dropped and
/// retried N times holds exactly one slot the whole time, and releases
/// exactly once on its final completion.
#[test]
fn retransmission_holds_one_slot_per_wr() {
    let sched = Scheduler::new();
    let inner = SimFabric::new(sched.clone(), FabricParams::default());
    let lossy = LossyFabric::simulated(inner, sched.clone(), LossyConfig::drops(0.4, 11));
    let p = pair(lossy.clone());
    for i in 0..16 {
        p.qb.post_recv(RecvWr::bare(i)).unwrap();
    }
    // Fill the cap exactly; every slot must survive its own retry chain.
    for i in 0..16u64 {
        p.post(i).unwrap();
    }
    assert_eq!(p.qa.outstanding(), 16);
    sched.run();
    assert!(lossy.dropped() > 0, "the loss model never fired (seed 11)");
    assert_eq!(lossy.exhausted(), 0);
    for i in 0..16 {
        let wc = p.cqa.poll_one().unwrap_or_else(|| panic!("wr {i} lost"));
        assert_eq!(wc.status, WcStatus::Success);
    }
    assert_eq!(
        p.qa.outstanding(),
        0,
        "retransmits leaked {} slots",
        p.qa.outstanding()
    );
    let snap = p.net.state().telemetry_snapshot();
    let qp = snap.qps.iter().find(|q| q.qp_num == p.qa.qp_num()).unwrap();
    assert_eq!(qp.send_posted, 16);
    assert_eq!(qp.completed_success, 16);
    assert_eq!(qp.slot_underflows, 0, "a slot was released twice");
    assert_eq!(snap.wire.retransmits, lossy.retransmits());
    invariants::check(&snap).assert_clean();
}

/// Ghost duplicates share the original's slot accounting: with every
/// transfer duplicated, the sender still sees exactly one completion and
/// one slot release per logical WR.
#[test]
fn ghost_duplicates_never_double_release() {
    let cfg = LossyConfig {
        dup_p: 1.0,
        ..LossyConfig::default()
    };
    let lossy = LossyFabric::new(InstantFabric::new(), cfg);
    let p = pair(lossy.clone());
    for i in 0..8 {
        p.qb.post_recv(RecvWr::bare(i)).unwrap();
    }
    for i in 0..8u64 {
        p.post(i).unwrap();
        assert_eq!(p.cqa.poll_one().unwrap().status, WcStatus::Success);
    }
    assert_eq!(lossy.duplicated(), 8);
    assert_eq!(p.qa.outstanding(), 0);
    let snap = p.net.state().telemetry_snapshot();
    let qp = snap.qps.iter().find(|q| q.qp_num == p.qa.qp_num()).unwrap();
    assert_eq!(qp.completed_success, 8, "ghosts must not complete");
    assert_eq!(qp.slot_underflows, 0, "ghost completion released a slot");
    assert_eq!(snap.wire.duplicates_suppressed, 8);
    invariants::check(&snap).assert_clean();
}

/// An error completion releases its slot exactly once, and a full
/// Error → RESET → INIT → RTR → RTS recovery starts from a clean zero —
/// no leaked slot shrinks the usable queue afterwards.
#[test]
fn recovery_restores_a_full_send_queue() {
    let faulty = FaultyFabric::new(
        InstantFabric::new(),
        FaultPlan::Indices(vec![0]),
        WcStatus::RemoteAccessError,
    );
    let p = pair(faulty.clone());
    for i in 0..17 {
        p.qb.post_recv(RecvWr::bare(i)).unwrap();
    }
    // First WR is eaten: error completion, QP dead, slot released.
    p.post(0).unwrap();
    let wc = p.cqa.poll_one().unwrap();
    assert_eq!(wc.status, WcStatus::RemoteAccessError);
    assert_eq!(p.qa.state(), QpState::Error);
    assert_eq!(p.qa.outstanding(), 0, "error completion leaked its slot");

    // Recover through the only legal path and prove all 16 slots exist by
    // filling the cap again.
    p.qa.modify(QpState::Reset).unwrap();
    p.qa.modify(QpState::Init).unwrap();
    p.qa.modify_to_rtr(partix_verbs::PeerId {
        node: p.qb.node(),
        qp_num: p.qb.qp_num(),
    })
    .unwrap();
    p.qa.modify_to_rts().unwrap();
    for i in 1..17u64 {
        p.post(i)
            .unwrap_or_else(|e| panic!("slot leaked across recovery: {e}"));
        assert_eq!(p.cqa.poll_one().unwrap().status, WcStatus::Success);
    }
    assert_eq!(p.qa.outstanding(), 0);
    let snap = p.net.state().telemetry_snapshot();
    let qp = snap.qps.iter().find(|q| q.qp_num == p.qa.qp_num()).unwrap();
    assert_eq!(qp.send_posted, 17);
    assert_eq!(qp.completed_success, 16);
    assert_eq!(qp.completed_error, 1);
    assert_eq!(qp.slot_underflows, 0);
    invariants::check(&snap).assert_clean();
    assert_eq!(faulty.injected(), 1);
}
