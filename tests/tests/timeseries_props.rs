//! Property tests over the time-series delta plane:
//!
//! - `snapshot_delta` / `snapshot_accum` round-trip: for arbitrary ledgers
//!   and arbitrary increments, the delta frame recovers the increment
//!   exactly (every counter non-negative, nothing wraps);
//! - reversed arguments saturate to zero instead of underflowing;
//! - a `Sampler` fed an arbitrary monotone snapshot sequence emits frames
//!   whose sum reproduces the final cumulative snapshot;
//! - a chaos full-stack run produces a frame sequence byte-identical across
//!   the sequential reference and the sharded executor at `--jobs 1/4`.
//!
//! The vendored proptest is deterministic (seeded from the test name, no
//! shrinking), so a green run is reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use partix_core::telemetry::{
    frames_json, snapshot_accum, snapshot_delta, ArenaSnapshot, CqSnapshot, QpSnapshot,
    RuntimeSnapshot, Sample, SampleSource, Sampler, SamplerConfig, Snapshot, WireSnapshot,
    STATUS_SLOTS,
};
use partix_sim::SimDuration;
use partix_workloads::fullstack::{run_fullstack_instrumented, Executor, FullStackConfig};
use proptest::prelude::*;

/// Build a full ledger snapshot (two QPs, two CQs, every scalar counter)
/// from a flat word pool. The pool cycles, so any non-empty vector works.
fn build_snapshot(vals: &[u64]) -> Snapshot {
    let mut it = vals.iter().copied().cycle();
    let mut n = move || it.next().expect("non-empty pool");
    let qp = |node: u32, qp_num: u32, n: &mut dyn FnMut() -> u64| QpSnapshot {
        node,
        qp_num,
        state: "RTS",
        outstanding: n(),
        recv_queue_depth: n(),
        send_posted: n(),
        recv_posted: n(),
        recv_consumed: n(),
        completed_success: n(),
        completed_error: n(),
        bytes_posted: n(),
        bytes_completed: n(),
        recoveries: n(),
        slot_underflows: n(),
    };
    let cq = |cq_id: u32, n: &mut dyn FnMut() -> u64| {
        let mut pushed_by_status = [0u64; STATUS_SLOTS];
        for s in pushed_by_status.iter_mut() {
            *s = n();
        }
        CqSnapshot {
            cq_id,
            pushed_by_status,
            pushed_total: n(),
            polled: n(),
            recv_pushed: n(),
            recv_bytes: n(),
        }
    };
    Snapshot {
        qps: vec![qp(0, 100, &mut n), qp(1, 101, &mut n)],
        cqs: vec![cq(7, &mut n), cq(8, &mut n)],
        wire: WireSnapshot {
            inner_submissions: n(),
            retransmits: n(),
            dropped: n(),
            duplicates_injected: n(),
            delayed: n(),
            exhausted: n(),
            injected_faults: n(),
            rnr_requeues: n(),
            mtu_segments: n(),
            delivery_attempts: n(),
            delivered: n(),
            delivered_ghost: n(),
            duplicates_suppressed: n(),
            remote_errors: n(),
            receiver_not_ready: n(),
            length_errors: n(),
            bytes_delivered: n(),
            recv_cqes: n(),
        },
        runtime: RuntimeSnapshot {
            preadys: n(),
            timer_fires: n(),
            aggregated_wrs: n(),
            partitions_posted: n(),
            pending_spills: n(),
            pending_reposts: n(),
            recoveries: n(),
            table_decisions: n(),
            table_fallback_decisions: n(),
            model_decisions: n(),
            fixed_decisions: n(),
        },
        arena: ArenaSnapshot {
            pool_gets: n(),
            pool_hits: n(),
            pool_misses: n(),
            pool_returns: n(),
            live_high_water: n(),
        },
    }
}

/// Assert every monotone counter of `d` is zero (gauges excluded — they are
/// carried, not subtracted).
fn assert_monotone_zero(d: &Snapshot) {
    for (name, v) in d.wire.fields() {
        assert_eq!(v, 0, "wire.{name} should have saturated to zero");
    }
    for (name, v) in d.runtime.fields() {
        assert_eq!(v, 0, "runtime.{name} should have saturated to zero");
    }
    assert_eq!(d.arena.pool_gets, 0);
    assert_eq!(d.arena.pool_hits, 0);
    assert_eq!(d.arena.pool_misses, 0);
    assert_eq!(d.arena.pool_returns, 0);
    for q in &d.qps {
        assert_eq!(q.send_posted, 0);
        assert_eq!(q.recv_posted, 0);
        assert_eq!(q.recv_consumed, 0);
        assert_eq!(q.completed_success, 0);
        assert_eq!(q.completed_error, 0);
        assert_eq!(q.bytes_posted, 0);
        assert_eq!(q.bytes_completed, 0);
        assert_eq!(q.recoveries, 0);
        assert_eq!(q.slot_underflows, 0);
    }
    for c in &d.cqs {
        assert!(c.pushed_by_status.iter().all(|&s| s == 0));
        assert_eq!(c.pushed_total, 0);
        assert_eq!(c.polled, 0);
        assert_eq!(c.recv_pushed, 0);
        assert_eq!(c.recv_bytes, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delta/accum round-trip: with `cur = prev + inc` (same QP/CQ rows),
    /// `snapshot_delta(prev, cur)` recovers `inc` exactly — every counter
    /// is the true non-negative increment, and the live gauges carry the
    /// window-end values. Bounded below 2^40 so the accumulation itself
    /// cannot overflow.
    #[test]
    fn delta_recovers_the_increment_exactly(
        base in prop::collection::vec(0u64..1 << 40, 8..64),
        inc in prop::collection::vec(0u64..1 << 40, 8..64),
    ) {
        let prev = build_snapshot(&base);
        let inc = build_snapshot(&inc);
        let mut cur = prev.clone();
        snapshot_accum(&mut cur, &inc);
        prop_assert_eq!(snapshot_delta(&prev, &cur), inc);
    }

    /// Saturating subtraction: reversing the arguments (a "shrinking"
    /// ledger, which a real run never produces) must clamp every monotone
    /// counter to zero rather than wrapping around.
    #[test]
    fn reversed_delta_saturates_to_zero(
        base in prop::collection::vec(0u64..1 << 40, 8..64),
        inc in prop::collection::vec(1u64..1 << 40, 8..64),
    ) {
        let prev = build_snapshot(&base);
        let mut cur = prev.clone();
        snapshot_accum(&mut cur, &build_snapshot(&inc));
        assert_monotone_zero(&snapshot_delta(&cur, &prev));
    }

    /// Frame-sum law: feeding a sampler an arbitrary monotone snapshot
    /// sequence, the sum of every emitted frame reproduces the final
    /// cumulative snapshot — the end-of-run export is exactly the integral
    /// of the time series.
    #[test]
    fn frames_sum_to_the_final_cumulative_snapshot(
        increments in prop::collection::vec(
            prop::collection::vec(0u64..1 << 32, 4..24),
            1..12,
        ),
    ) {
        let mut cumulative = Vec::with_capacity(increments.len());
        let mut acc = Snapshot::default();
        for inc in &increments {
            snapshot_accum(&mut acc, &build_snapshot(inc));
            cumulative.push(acc.clone());
        }
        let last = cumulative.last().expect("at least one increment").clone();
        let observations = Arc::new(cumulative);
        let cursor = Arc::new(AtomicUsize::new(0));
        let source: SampleSource = {
            let observations = observations.clone();
            Arc::new(move || Sample {
                snapshot: observations[cursor.fetch_add(1, Ordering::Relaxed)].clone(),
                stages: Vec::new(),
                gauges: Vec::new(),
            })
        };
        let sampler = Sampler::new(
            SamplerConfig {
                interval_ns: 10,
                capacity: observations.len(),
                deterministic: false,
            },
            source,
        );
        for k in 1..=observations.len() as u64 {
            sampler.tick(k * 10);
        }
        prop_assert_eq!(sampler.frames_captured(), observations.len() as u64);
        let mut summed = Snapshot::default();
        for frame in sampler.frames() {
            snapshot_accum(&mut summed, &frame.deltas);
        }
        prop_assert_eq!(summed, last);
    }
}

/// Acceptance criterion: a chaos full-stack run on the sharded executor at
/// `--jobs 1` and `--jobs 4` emits a frame sequence **byte-identical** to
/// the sequential reference — the time axis is as deterministic as the
/// end-of-run digests.
#[test]
fn chaos_fullstack_frames_are_jobs_invariant() {
    let cfg = FullStackConfig::chaos(6, 0.15, 42);
    let sampling = Some((SimDuration::from_micros(100), 512));
    let run = |executor: Executor| {
        let label = executor.label();
        let (report, world, _sched) = run_fullstack_instrumented(&cfg, executor, None, sampling);
        assert!(report.invariants_clean, "{label}: dirty telemetry ledger");
        let sampler = world.sampler().expect("sampling enabled");
        frames_json(&sampler.frames())
    };
    let reference = run(Executor::Reference);
    assert!(
        !reference.is_empty(),
        "reference run captured no frames — sampling interval too coarse"
    );
    for jobs in [1usize, 4] {
        let got = run(Executor::Sharded(jobs));
        for (i, (want, have)) in reference.lines().zip(got.lines()).enumerate() {
            assert_eq!(
                want, have,
                "jobs={jobs}: frame {i} diverged from the reference"
            );
        }
        assert_eq!(
            got.lines().count(),
            reference.lines().count(),
            "jobs={jobs}: frame count diverged from the reference"
        );
    }
}
