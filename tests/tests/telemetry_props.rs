//! Property tests over the Verbs wire surface, checked against the
//! telemetry ledger:
//!
//! - MTU segmentation conserves bytes and segments exactly for arbitrary
//!   transfer sizes and MTUs;
//! - PSN duplicate suppression delivers exactly once under arbitrary
//!   seeded drop/duplicate/delay interleavings.
//!
//! Both properties close with `invariants::check_strict` on the telemetry
//! snapshot, so any accounting drift the direct assertions miss still
//! fails the case. The vendored proptest is deterministic (seeded from the
//! test name, no shrinking), so a green run is reproducible.

use partix_sim::Scheduler;
use partix_verbs::{
    connect_pair, invariants, telemetry::segments_for, FabricParams, LossyConfig, LossyFabric,
    Network, Opcode, QpCaps, RecvWr, SendWr, Sge, SimFabric, WcStatus,
};
use proptest::prelude::*;

/// One RDMA-write-with-immediate of `src` into `dst`.
fn write_imm(
    qp: &std::sync::Arc<partix_verbs::QueuePair>,
    src: &partix_verbs::MemoryRegion,
    dst: &partix_verbs::MemoryRegion,
    wr_id: u64,
    len: u32,
) -> partix_verbs::Result<()> {
    qp.post_send(SendWr {
        wr_id,
        opcode: Opcode::RdmaWriteWithImm,
        sg_list: vec![Sge {
            addr: src.addr(),
            length: len,
            lkey: src.lkey(),
        }],
        remote_addr: dst.addr(),
        rkey: dst.rkey(),
        imm: Some(wr_id as u32),
        inline_data: false,
        flow: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Segmentation conservation: for arbitrary transfer sizes and MTUs,
    /// the wire ledger counts exactly `ceil(size / mtu)` segments per
    /// transfer (minimum one — a bare immediate still costs a header) and
    /// every payload byte lands in the destination region exactly once.
    #[test]
    fn mtu_segmentation_conserves_bytes_and_segments(
        mtu in 256usize..=4096,
        sizes in prop::collection::vec(1u32..=16384, 1..8),
    ) {
        let sched = Scheduler::new();
        let params = FabricParams {
            mtu,
            ..FabricParams::default()
        };
        let net = Network::new(2, SimFabric::new(sched.clone(), params));
        let a = net.open(0).unwrap();
        let b = net.open(1).unwrap();
        let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
        let (cqa, cqb) = (a.create_cq(), b.create_cq());
        let qa = a.create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default()).unwrap();
        let qb = b.create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default()).unwrap();
        connect_pair(&qa, &qb).unwrap();

        let mut pairs = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let src = a.reg_mr(pda, len as usize).unwrap();
            let dst = b.reg_mr(pdb, len as usize).unwrap();
            src.fill(0, len as usize, (i as u8).wrapping_add(1)).unwrap();
            qb.post_recv(RecvWr::bare(i as u64)).unwrap();
            pairs.push((src, dst));
        }
        for (i, &len) in sizes.iter().enumerate() {
            write_imm(&qa, &pairs[i].0, &pairs[i].1, i as u64, len).unwrap();
        }
        sched.run();

        // Every send completed successfully, every receive fired.
        for i in 0..sizes.len() {
            let wc = cqa.poll_one().unwrap_or_else(|| panic!("send {i} never completed"));
            prop_assert_eq!(wc.status, WcStatus::Success);
            prop_assert!(cqb.poll_one().is_some(), "recv {} never fired", i);
        }
        prop_assert!(cqa.poll_one().is_none(), "phantom send completion");
        prop_assert!(cqb.poll_one().is_none(), "phantom recv completion");

        // Byte round-trip at the destination regions.
        for (i, &len) in sizes.iter().enumerate() {
            let got = pairs[i].1.read_vec(0, len as usize).unwrap();
            prop_assert!(
                got.iter().all(|&x| x == (i as u8).wrapping_add(1)),
                "transfer {} corrupted", i
            );
        }

        let snap = net.state().telemetry_snapshot();
        let want_segments: u64 = sizes.iter().map(|&s| segments_for(s as u64, mtu)).sum();
        let want_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(snap.wire.mtu_segments, want_segments);
        prop_assert_eq!(snap.wire.bytes_delivered, want_bytes);
        prop_assert_eq!(snap.wire.delivered, sizes.len() as u64);
        invariants::check_strict(&snap).assert_clean();
    }

    /// PSN exactly-once: under an arbitrary seeded mix of drops (with
    /// retransmission), injected ghost duplicates, and delays, each logical
    /// send completes successfully exactly once at the sender, consumes
    /// exactly one receive WR, and writes its payload exactly once — and
    /// the wire ledger reconciles the whole mess.
    #[test]
    fn psn_suppression_delivers_exactly_once(
        drop_p in 0.0f64..=0.3,
        dup_p in 0.0f64..=1.0,
        delay_p in 0.0f64..=1.0,
        seed in any::<u64>(),
        k in 1usize..=12,
    ) {
        const LEN: usize = 64;
        let sched = Scheduler::new();
        let cfg = LossyConfig { drop_p, dup_p, delay_p, max_delay_ns: 5_000, seed };
        let inner = SimFabric::new(sched.clone(), FabricParams::default());
        let lossy = LossyFabric::simulated(inner, sched.clone(), cfg);
        let net = Network::new(2, lossy.clone());
        let a = net.open(0).unwrap();
        let b = net.open(1).unwrap();
        let (pda, pdb) = (a.alloc_pd(), b.alloc_pd());
        let (cqa, cqb) = (a.create_cq(), b.create_cq());
        let qa = a.create_qp(pda, cqa.clone(), a.create_cq(), QpCaps::default()).unwrap();
        let qb = b.create_qp(pdb, b.create_cq(), cqb.clone(), QpCaps::default()).unwrap();
        connect_pair(&qa, &qb).unwrap();

        let mut pairs = Vec::new();
        for i in 0..k {
            let src = a.reg_mr(pda, LEN).unwrap();
            let dst = b.reg_mr(pdb, LEN).unwrap();
            src.fill(0, LEN, (i as u8).wrapping_add(0xA0)).unwrap();
            qb.post_recv(RecvWr::bare(i as u64)).unwrap();
            pairs.push((src, dst));
        }
        for (i, (src, dst)) in pairs.iter().enumerate() {
            write_imm(&qa, src, dst, i as u64, LEN as u32).unwrap();
        }
        sched.run();

        // Exactly one successful completion per logical send; ghosts and
        // retransmissions never produce extras.
        for i in 0..k {
            let wc = cqa.poll_one().unwrap_or_else(|| panic!("send {i} never completed"));
            prop_assert_eq!(wc.status, WcStatus::Success);
        }
        prop_assert!(cqa.poll_one().is_none(), "duplicate sender completion");
        // Exactly one receive CQE and one consumed recv WR per send.
        prop_assert_eq!(cqb.total_pushed(), k as u64);
        prop_assert_eq!(qb.recv_queue_depth(), 0);
        prop_assert_eq!(qa.outstanding(), 0, "slot leak under retransmission");
        for (i, (_, dst)) in pairs.iter().enumerate() {
            let got = dst.read_vec(0, LEN).unwrap();
            prop_assert!(
                got.iter().all(|&x| x == (i as u8).wrapping_add(0xA0)),
                "transfer {} corrupted", i
            );
        }

        // The ledger mirrors the fault model's own books and reconciles.
        let snap = net.state().telemetry_snapshot();
        prop_assert_eq!(snap.wire.dropped, lossy.dropped());
        prop_assert_eq!(snap.wire.retransmits, lossy.retransmits());
        prop_assert_eq!(snap.wire.duplicates_injected, lossy.duplicated());
        prop_assert_eq!(lossy.exhausted(), 0, "retry budget should absorb 30% loss");
        while cqb.poll_one().is_some() {}
        invariants::check_strict(&net.state().telemetry_snapshot()).assert_clean();
    }
}
