//! Property tests over the shared-memory SPSC byte ring
//! (`partix_verbs::shm::SpscRing`):
//!
//! - arbitrary capacities and record mixes stream FIFO with bytes intact,
//!   including records that straddle the physical wrap point (monotone
//!   cursors mean the data offset wraps while the cursors never do);
//! - the full/empty boundary is exact: a push is rejected iff the free
//!   span is smaller than the record, with no sacrificial slot, and the
//!   published-byte ledger (`len()`) reconciles after every operation;
//! - a real producer thread and consumer thread agree on the stream for
//!   arbitrary payload mixes, ending in the close-drain handshake.
//!
//! The vendored proptest is deterministic (seeded from the test name), so
//! a green run is reproducible.

use std::sync::Arc;

use partix_verbs::shm::{HeapSegment, Popped, SpscRing, RECORD_HEADER};
use proptest::prelude::*;

fn ring(cap: usize) -> SpscRing {
    SpscRing::new(Arc::new(HeapSegment::new(cap)))
}

/// Deterministic payload for record `i` of length `len`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i.wrapping_mul(37).wrapping_add(j.wrapping_mul(11)) & 0xff) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any capacity, any record mix: the consumer sees exactly the
    /// producer's sequence. Single-threaded, draining inline whenever the
    /// ring rejects a push, so the cursors sweep through many physical
    /// offsets and records straddle the wrap at arbitrary split points.
    #[test]
    fn stream_is_fifo_at_any_capacity(
        cap in 24usize..=1024,
        lens in prop::collection::vec(0usize..=192, 1..120),
    ) {
        let r = ring(cap);
        let max_payload = r.max_payload() as usize;
        let mut buf = Vec::new();
        let mut next = 0usize; // next record index expected out
        for (i, &len) in lens.iter().enumerate() {
            let len = len.min(max_payload);
            let bytes = payload(i, len);
            while !r.try_push((i % 251) as u8, &bytes) {
                // Full: the consumer must be able to free space.
                match r.try_pop(&mut buf) {
                    Popped::Record(kind) => {
                        prop_assert_eq!(kind, (next % 251) as u8);
                        let want = payload(next, lens[next].min(max_payload));
                        prop_assert_eq!(&buf, &want, "record {} corrupted", next);
                        next += 1;
                    }
                    other => prop_assert!(false, "full ring popped {:?}", other),
                }
            }
        }
        r.close();
        loop {
            match r.try_pop(&mut buf) {
                Popped::Record(kind) => {
                    prop_assert_eq!(kind, (next % 251) as u8);
                    let want = payload(next, lens[next].min(max_payload));
                    prop_assert_eq!(&buf, &want, "record {} corrupted", next);
                    next += 1;
                }
                Popped::Closed => break,
                Popped::Empty => prop_assert!(false, "closed ring reported Empty"),
            }
        }
        prop_assert_eq!(next, lens.len(), "records lost");
        prop_assert!(r.is_empty());
    }

    /// Advance the cursors to an arbitrary physical offset with a warm-up
    /// sequence (push+pop on an otherwise empty ring moves both cursors by
    /// the record footprint), then round-trip a near-capacity record from
    /// there: wherever the cursor landed, header and payload splits across
    /// the wrap boundary must be invisible to the consumer.
    #[test]
    fn wrap_straddling_record_round_trips(
        cap in 32usize..=256,
        warmup in prop::collection::vec(0usize..=100, 0..24),
        len in 0usize..=248,
    ) {
        let r = ring(cap);
        let max_payload = r.max_payload() as usize;
        let mut buf = Vec::new();
        for (i, &w) in warmup.iter().enumerate() {
            let bytes = payload(i, w.min(max_payload));
            prop_assert!(r.try_push(0, &bytes), "warm-up push on empty ring");
            prop_assert_eq!(r.try_pop(&mut buf), Popped::Record(0));
            prop_assert_eq!(&buf, &bytes);
        }
        // The record under test: long payloads straddle the boundary for
        // most cursor positions; short ones exercise split headers.
        let bytes = payload(99, len.min(max_payload));
        prop_assert!(r.try_push(7, &bytes));
        prop_assert_eq!(r.try_pop(&mut buf), Popped::Record(7));
        prop_assert_eq!(&buf, &bytes);
        prop_assert!(r.is_empty());
    }

    /// The full/empty boundary is exact: pushes are accepted while the
    /// record fits in `capacity - len()` and rejected otherwise; popping
    /// one record frees exactly its footprint.
    #[test]
    fn full_empty_boundary_is_exact(
        cap in 24usize..=512,
        record_len in 0usize..=64,
    ) {
        let r = ring(cap);
        let record_len = record_len.min(r.max_payload() as usize);
        let footprint = RECORD_HEADER as usize + record_len;
        let bytes = payload(3, record_len);
        let mut pushed = 0usize;
        // Fill to the brim; the ledger tracks every accepted record.
        while r.try_push(1, &bytes) {
            pushed += 1;
            prop_assert_eq!(r.len(), (pushed * footprint) as u64);
            prop_assert!(pushed * footprint <= cap, "ring overcommitted");
        }
        prop_assert_eq!(pushed, cap / footprint, "acceptance must match exact fit");
        // No sacrificial slot: the reject happened only because the free
        // span is genuinely smaller than one footprint.
        prop_assert!(cap - pushed * footprint < footprint);
        let mut buf = Vec::new();
        prop_assert_eq!(r.try_pop(&mut buf), Popped::Record(1));
        prop_assert_eq!(&buf, &bytes);
        // Exactly one footprint freed: one push fits again, a second would
        // exceed the span that single pop released.
        prop_assert!(r.try_push(2, &bytes));
        prop_assert!(!r.try_push(2, &bytes));
        // Drain everything; order and the ledger must reconcile.
        let mut drained = 0usize;
        loop {
            match r.try_pop(&mut buf) {
                Popped::Record(kind) => {
                    prop_assert_eq!(kind, if drained + 1 < pushed { 1 } else { 2 });
                    prop_assert_eq!(&buf, &bytes);
                    drained += 1;
                }
                Popped::Empty => break,
                Popped::Closed => prop_assert!(false, "ring never closed"),
            }
        }
        prop_assert_eq!(drained, pushed, "one popped, one pushed: count preserved");
        prop_assert_eq!(r.len(), 0);
    }

    /// Cross-thread stream with arbitrary payload mixes: a real producer
    /// and consumer agree on record order, kinds and bytes, and the close
    /// handshake drains everything before reporting `Closed`.
    #[test]
    fn threaded_stream_agrees(
        cap in 64usize..=2048,
        lens in prop::collection::vec(0usize..=128, 1..400),
    ) {
        let seg = Arc::new(HeapSegment::new(cap));
        let tx = SpscRing::new(seg.clone());
        let rx = SpscRing::new(seg);
        let max_payload = tx.max_payload() as usize;
        let lens_tx: Vec<usize> = lens.iter().map(|&l| l.min(max_payload)).collect();
        let expect = lens_tx.clone();
        let producer = std::thread::spawn(move || {
            for (i, &len) in lens_tx.iter().enumerate() {
                let bytes = payload(i, len);
                while !tx.try_push((i % 251) as u8, &bytes) {
                    std::hint::spin_loop();
                }
            }
            tx.close();
        });
        let mut buf = Vec::new();
        let mut next = 0usize;
        loop {
            match rx.try_pop(&mut buf) {
                Popped::Record(kind) => {
                    prop_assert_eq!(kind, (next % 251) as u8);
                    prop_assert_eq!(&buf, &payload(next, expect[next]), "record {}", next);
                    next += 1;
                }
                Popped::Empty => std::hint::spin_loop(),
                Popped::Closed => break,
            }
        }
        producer.join().expect("producer");
        prop_assert_eq!(next, expect.len(), "records lost in flight");
    }
}
