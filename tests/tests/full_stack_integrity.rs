//! Property-based data-integrity tests through the full stack: for every
//! aggregator, any pready order, any (power-of-two or not) partition
//! count, and both fabrics, the receiver observes exactly the bytes the
//! sender committed, and arrival flags never lie.

use partix_core::{AggregatorKind, PartixConfig, SimDuration, World};
use partix_system_tests::{instant_pair, pattern};
use proptest::prelude::*;

const KINDS: [AggregatorKind; 4] = [
    AggregatorKind::Persistent,
    AggregatorKind::TuningTable,
    AggregatorKind::PLogGp,
    AggregatorKind::TimerPLogGp,
];

fn kind_strategy() -> impl Strategy<Value = AggregatorKind> {
    prop::sample::select(KINDS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instant fabric: arbitrary shapes and pready orders round-trip.
    #[test]
    fn instant_round_trip(
        kind in kind_strategy(),
        partitions in 1u32..40,
        part_bytes in prop::sample::select(vec![1usize, 3, 64, 257, 1024, 4096]),
        seed in any::<u64>(),
        rounds in 1u64..4,
    ) {
        let mut cfg = PartixConfig::with_aggregator(kind);
        cfg.delta = SimDuration::from_micros(1); // keep real-time timers short
        let pair = instant_pair(cfg, partitions, part_bytes);
        let mut idx: Vec<u32> = (0..partitions).collect();
        for round in 1..=rounds {
            pair.recv.start().unwrap();
            pair.send.start().unwrap();
            // Shuffle the pready order deterministically from the seed.
            let mut s = seed.wrapping_add(round);
            for i in (1..idx.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                idx.swap(i, (s >> 33) as usize % (i + 1));
            }
            for &i in &idx {
                pair.sbuf
                    .fill(i as usize * part_bytes, part_bytes, pattern(round, i))
                    .unwrap();
                pair.send.pready(i).unwrap();
            }
            pair.send.wait().unwrap();
            pair.recv.wait().unwrap();
            for i in 0..partitions {
                let got = pair
                    .rbuf
                    .read_vec(i as usize * part_bytes, part_bytes)
                    .unwrap();
                prop_assert!(
                    got.iter().all(|b| *b == pattern(round, i)),
                    "{kind:?}: partition {i} corrupted in round {round}"
                );
            }
            prop_assert!(pair.send.error().is_none());
        }
        prop_assert_eq!(pair.send.completed_rounds(), rounds);
        prop_assert_eq!(pair.recv.completed_rounds(), rounds);
    }

    /// Simulated fabric: staggered virtual-time arrivals round-trip and the
    /// per-round WR count never exceeds the partition count nor falls below
    /// the plan's group count.
    #[test]
    fn sim_round_trip(
        kind in kind_strategy(),
        partitions in prop::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
        part_bytes in prop::sample::select(vec![64usize, 2048, 64 << 10]),
        delta_us in prop::sample::select(vec![5u64, 50, 5_000]),
        stagger_us in 0u64..100,
    ) {
        let mut cfg = PartixConfig::with_aggregator(kind);
        cfg.delta = SimDuration::from_micros(delta_us);
        let (world, sched) = World::sim(2, cfg.clone());
        let p0 = world.proc(0);
        let p1 = world.proc(1);
        let total = partitions as usize * part_bytes;
        let sbuf = p0.alloc_buffer(total).unwrap();
        let rbuf = p1.alloc_buffer(total).unwrap();
        let send = p0.psend_init(&sbuf, partitions, part_bytes, 1, 0).unwrap();
        let recv = p1.precv_init(&rbuf, partitions, part_bytes, 0, 0).unwrap();

        let send2 = send.clone();
        let recv2 = recv.clone();
        let sbuf2 = sbuf.clone();
        let sched2 = sched.clone();
        send.on_ready(move || {
            recv2.start().unwrap();
            send2.start().unwrap();
            for i in 0..partitions {
                let send3 = send2.clone();
                let sbuf3 = sbuf2.clone();
                sched2.after(
                    SimDuration::from_micros(stagger_us * (i as u64 % 7)),
                    move || {
                        sbuf3
                            .fill(i as usize * part_bytes, part_bytes, pattern(1, i))
                            .unwrap();
                        send3.pready(i).unwrap();
                    },
                );
            }
        });
        sched.run();

        prop_assert_eq!(send.completed_rounds(), 1, "{:?} did not complete", kind);
        prop_assert_eq!(recv.completed_rounds(), 1);
        for i in 0..partitions {
            let got = rbuf.read_vec(i as usize * part_bytes, part_bytes).unwrap();
            prop_assert!(got.iter().all(|b| *b == pattern(1, i)));
        }
        let plan = send.plan().unwrap();
        let wrs = send.total_wrs_posted();
        prop_assert!(
            wrs >= plan.groups as u64 && wrs <= partitions as u64,
            "{kind:?}: {wrs} WRs outside [{}, {partitions}]",
            plan.groups
        );
        if plan.timer_delta.is_none() {
            prop_assert_eq!(wrs, plan.groups as u64, "non-timer policies post exactly one WR per group");
        }
    }
}

/// Non-power-of-two partition counts flow through every aggregator intact
/// (groups are clamped to a dividing power of two).
#[test]
fn odd_partition_counts() {
    for kind in KINDS {
        for partitions in [3u32, 5, 6, 12, 17, 33] {
            let pair = instant_pair(PartixConfig::with_aggregator(kind), partitions, 128);
            pair.recv.start().unwrap();
            pair.send.start().unwrap();
            for i in 0..partitions {
                pair.sbuf
                    .fill(i as usize * 128, 128, pattern(9, i))
                    .unwrap();
                pair.send.pready(i).unwrap();
            }
            pair.send.wait().unwrap();
            pair.recv.wait().unwrap();
            let plan = pair.send.plan().unwrap();
            assert_eq!(
                plan.groups * plan.group_size,
                partitions,
                "{kind:?}/{partitions}"
            );
            for i in 0..partitions {
                let got = pair.rbuf.read_vec(i as usize * 128, 128).unwrap();
                assert!(got.iter().all(|b| *b == pattern(9, i)));
            }
        }
    }
}

/// Several concurrent channels between the same pair of ranks (distinct
/// tags) do not interfere.
#[test]
fn concurrent_channels_are_isolated() {
    let world = partix_core::World::instant(2, PartixConfig::default());
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let channels: Vec<_> = (0..6u32)
        .map(|tag| {
            let sbuf = p0.alloc_buffer(8 * 256).unwrap();
            let rbuf = p1.alloc_buffer(8 * 256).unwrap();
            let send = p0.psend_init(&sbuf, 8, 256, 1, tag).unwrap();
            let recv = p1.precv_init(&rbuf, 8, 256, 0, tag).unwrap();
            (tag, send, recv, sbuf, rbuf)
        })
        .collect();
    for (tag, send, recv, sbuf, _) in &channels {
        recv.start().unwrap();
        send.start().unwrap();
        for i in 0..8 {
            sbuf.fill(i as usize * 256, 256, (*tag as u8) * 10 + i as u8)
                .unwrap();
        }
    }
    // Interleaved commit order across channels.
    for i in 0..8u32 {
        for (_, send, _, _, _) in &channels {
            send.pready(i).unwrap();
        }
    }
    for (tag, send, recv, _, rbuf) in &channels {
        send.wait().unwrap();
        recv.wait().unwrap();
        for i in 0..8u32 {
            let got = rbuf.read_vec(i as usize * 256, 256).unwrap();
            assert!(
                got.iter().all(|b| *b == (*tag as u8) * 10 + i as u8),
                "channel {tag} partition {i} corrupted"
            );
        }
    }
}
