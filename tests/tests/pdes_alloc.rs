//! Allocation regression test for the PDES cross-shard channel path.
//!
//! A counting global allocator wraps `System`; with the engine's pools
//! presized ([`PdesConfig::channel_capacity`] / `event_capacity`), a full
//! run of a cross-shard-heavy model on the inline epoch executor must
//! perform **zero heap allocations**: mailbox pushes land in preallocated
//! buffers, merges swap those buffers instead of reallocating, the merge
//! sort is in-place (`sort_unstable`), and event payloads recycle slab
//! slots.
//!
//! This file holds exactly one test: a sibling test allocating on another
//! thread while the window is open would fail it spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use partix_sim::pdes::{Pdes, PdesConfig, PdesNode, ShardCtx, ShardLogic};
use partix_sim::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const NODES: u32 = 64;
const SHARDS: u32 = 4;
const HOPS: u32 = 4096;

/// Token ring: every hop crosses to the next node, and striping puts
/// consecutive nodes on different shards, so every single event exercises
/// the cross-shard channel path (mailbox push, merge, sort, slab recycle).
struct Ring;

#[derive(Clone, Copy)]
struct Hop {
    remaining: u32,
}

impl ShardLogic for Ring {
    type Event = Hop;
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Hop>, node: PdesNode, ev: Hop) {
        if ev.remaining > 0 {
            ctx.send(
                (node + 1) % NODES,
                SimDuration::from_nanos(100 + (node as u64 & 0x1F)),
                Hop {
                    remaining: ev.remaining - 1,
                },
            );
        }
    }
}

#[test]
fn pdes_cross_shard_path_is_allocation_free() {
    let cfg = PdesConfig {
        shards: SHARDS,
        lookahead: SimDuration::from_nanos(100),
        channel_capacity: 64,
        event_capacity: 64,
    };
    let mut pdes = Pdes::new(cfg, (0..SHARDS).map(|_| Ring).collect());
    pdes.seed(0, SimTime(0), Hop { remaining: HOPS });

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let report = pdes.run(1);
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    // Verify the run actually moved the token before judging the count.
    assert_eq!(report.events as u32, HOPS + 1);
    assert_eq!(report.cross_messages as u32, HOPS);
    assert!(report.epochs > 0);
    assert_eq!(
        report.channel_overflows, 0,
        "presized channels must not report overflow"
    );
    assert_eq!(
        allocs, 0,
        "PDES steady state must not touch the heap ({allocs} allocations leaked into the epoch loop)"
    );
}
