//! Agreement between the PLogGP model and the discrete-event simulation:
//! the model's qualitative predictions (which transport partition count
//! wins where) must hold when measured end-to-end on the simulated fabric.

use partix_core::{AggregatorKind, PartixConfig};
use partix_model::{ArrivalPattern, PLogGpModel};
use partix_workloads::overhead::forced_config;
use partix_workloads::{run_pt2pt, Pt2PtConfig, ThreadTiming};

/// Measure one forced-(T,Q) configuration under the many-before-one pattern
/// (100 ms compute, 4% noise) and return the mean total round time.
fn measure(partitions: u32, total_bytes: usize, transport: u32, qps: u32) -> f64 {
    let mut partix = forced_config(
        &PartixConfig::default(),
        partitions,
        total_bytes,
        transport,
        qps,
    );
    partix.fabric.copy_data = false;
    let cfg = Pt2PtConfig {
        partix,
        partitions,
        part_bytes: total_bytes / partitions as usize,
        warmup: 1,
        iters: 6,
        timing: ThreadTiming::perceived_bw(100, 0.04),
        seed: 99,
    };
    let r = run_pt2pt(&cfg);
    r.mean_total_ns()
}

/// Large messages: the model prefers splitting, and so does the simulation.
#[test]
fn splitting_wins_for_large_messages_in_both() {
    let model = PLogGpModel::niagara();
    let size = 128 << 20;
    let m1 = model.completion_many_before_one(size, 1, 4e6);
    let m32 = model.completion_many_before_one(size, 32, 4e6);
    assert!(m32 < m1, "model must prefer 32 partitions at 128 MiB");

    let s1 = measure(32, size, 1, 1);
    let s32 = measure(32, size, 32, 16);
    assert!(
        s32 < s1,
        "simulation must agree: T=32 ({s32} ns) vs T=1 ({s1} ns) at 128 MiB"
    );
}

/// Small messages: the model prefers full aggregation; the simulation must
/// at least not punish it (near-tie or win).
#[test]
fn aggregation_not_punished_for_small_messages() {
    let model = PLogGpModel::niagara();
    let size = 32 << 10;
    assert_eq!(
        model.optimal_transport_partitions(size, 32, 4e6),
        1,
        "model fully aggregates 32 KiB"
    );
    let s1 = measure(32, size, 1, 1);
    let s32 = measure(32, size, 32, 16);
    assert!(
        s1 < s32 * 1.05,
        "T=1 ({s1} ns) should be within 5% of T=32 ({s32} ns) at 32 KiB"
    );
}

/// The model's chosen optimum is never much worse in simulation than the
/// best forced configuration across a small grid.
#[test]
fn model_choice_close_to_simulated_argmin() {
    let partitions = 16u32;
    for size in [64usize << 10, 4 << 20, 64 << 20] {
        let model_t = PLogGpModel::niagara().optimal_transport_partitions(size, partitions, 4e6);
        let model_time = measure(partitions, size, model_t, model_t.min(16));
        let mut best = f64::INFINITY;
        let mut t = 1u32;
        while t <= partitions {
            best = best.min(measure(partitions, size, t, t.min(16)));
            t <<= 1;
        }
        assert!(
            model_time <= best * 1.30,
            "at {size} bytes the model's T={model_t} ({model_time} ns) is >30% off the simulated argmin ({best} ns)"
        );
    }
}

/// Simultaneous-arrival model evaluations are internally consistent with
/// the generic pipeline evaluator at T=1.
#[test]
fn model_evaluators_agree_at_t1() {
    let m = PLogGpModel::niagara();
    for size in [1usize << 10, 1 << 20, 64 << 20] {
        let a = m.completion(size, 1, &ArrivalPattern::Simultaneous);
        let b = m.completion_pipeline(&[0.0], size);
        // Simultaneous charges G*(k-1), pipeline G*k: sub-per-mille apart.
        assert!((a - b).abs() / a < 1e-3, "{size}: {a} vs {b}");
    }
}

/// The aggregator actually consults the model: the planned transport count
/// equals the model's optimum (clamped to the user's partitions).
#[test]
fn runtime_plan_matches_model() {
    for (size, partitions) in [
        (32usize << 10, 32u32),
        (2 << 20, 32),
        (128 << 20, 32),
        (128 << 20, 8),
    ] {
        let cfg = PartixConfig::with_aggregator(AggregatorKind::PLogGp);
        let plan = partix_core::plan_for(&cfg, partitions, size / partitions as usize);
        let expect = PLogGpModel::new(cfg.model_params).optimal_transport_partitions(
            size,
            partitions,
            cfg.decision_delay_ns,
        );
        assert_eq!(plan.groups, expect, "size {size} partitions {partitions}");
    }
}
