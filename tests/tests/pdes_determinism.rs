//! Executor-independence of the sharded PDES engine at workload scale.
//!
//! The engine's contract: with the shard count held fixed, the sequential
//! reference executor, the inline epoch loop (`jobs = 1`), and the threaded
//! epoch engine at any job count all produce the same events in the same
//! order — checked end to end through the order-sensitive workload digests
//! (any reordering anywhere in the run changes the digest).

use partix_workloads::fullstack::{
    run_fullstack, run_fullstack_observed, Executor, FullStackConfig,
};
use partix_workloads::pdes::{run_fanin, run_sweep, PdesOutcome, PdesWorkloadConfig};

const JOB_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn assert_matrix_agrees(
    name: &str,
    cfg: &PdesWorkloadConfig,
    run: impl Fn(&PdesWorkloadConfig, Option<usize>) -> PdesOutcome,
) -> PdesOutcome {
    let reference = run(cfg, None);
    for jobs in JOB_MATRIX {
        let got = run(cfg, Some(jobs));
        assert_eq!(
            got.deterministic_parts(),
            reference.deterministic_parts(),
            "{name} (shards={}) diverged from the reference executor at jobs={jobs}",
            cfg.shards,
        );
    }
    reference
}

#[test]
fn fanin_agrees_across_the_job_matrix() {
    let cfg = PdesWorkloadConfig::new(4096);
    let out = assert_matrix_agrees("fanin", &cfg, run_fanin);
    // Every rank resolves: leaves contribute a Start, interior ranks a
    // Contribute per child — ranks-1 contributions in total.
    assert!(out.report.events >= 4096);
    assert!(out.report.cross_messages > 0, "tree must cross shards");
}

#[test]
fn sweep_agrees_across_the_job_matrix() {
    let cfg = PdesWorkloadConfig::new(2500);
    let out = assert_matrix_agrees("sweep", &cfg, run_sweep);
    assert_eq!(out.nodes, 2500, "50x50 grid uses every rank");
    // Each rank computes `sweeps` times; credits and tries add more events.
    assert!(out.report.events >= 2500 * cfg.sweeps as u64);
}

#[test]
fn shard_count_changes_the_schedule_not_the_model() {
    // The shard count is part of the experiment identity (it enters the
    // deterministic total order), so digests may differ across shard
    // counts — but each count must be internally consistent at every job
    // count, and model-level totals (event population of the fixed fan-in
    // tree) cannot depend on the partitioning.
    let mut events = Vec::new();
    for shards in [1, 3, 16, 64] {
        let mut cfg = PdesWorkloadConfig::new(2000);
        cfg.shards = shards;
        let out = assert_matrix_agrees("fanin", &cfg, run_fanin);
        events.push(out.report.events);
    }
    assert!(
        events.windows(2).all(|w| w[0] == w[1]),
        "fan-in event totals must be shard-count-invariant, got {events:?}"
    );
}

/// Full-stack executor independence: the entire verbs pipeline — partitioned
/// aggregation runtime, DES fabric, optionally the lossy wire — through the
/// job matrix, comparing the completion-record digest AND the canonical
/// telemetry ledger digest against the sequential reference. Ledger equality
/// is the stronger claim: every per-QP/CQ counter, all wire counters, and all
/// runtime counters byte-identical, with all conservation laws clean.
fn assert_fullstack_matrix_agrees(name: &str, cfg: &FullStackConfig) {
    let reference = run_fullstack(cfg, Executor::Reference);
    assert!(
        reference.invariants_clean,
        "{name}: reference run left a dirty ledger"
    );
    for jobs in JOB_MATRIX {
        let got = run_fullstack(cfg, Executor::Sharded(jobs));
        assert_eq!(
            got.digest, reference.digest,
            "{name}: completion digest diverged from the reference at jobs={jobs}"
        );
        assert_eq!(
            got.ledger_digest, reference.ledger_digest,
            "{name}: telemetry ledger diverged from the reference at jobs={jobs}"
        );
        assert_eq!(
            (got.events, got.makespan, got.drops, got.retransmits),
            (
                reference.events,
                reference.makespan,
                reference.drops,
                reference.retransmits
            ),
            "{name}: schedule shape diverged from the reference at jobs={jobs}"
        );
        assert!(
            got.invariants_clean,
            "{name}: jobs={jobs} left a dirty ledger"
        );
    }
}

#[test]
fn fullstack_figure_agrees_across_the_job_matrix() {
    for seed in [7, 4242] {
        let cfg = FullStackConfig::figure(6, seed);
        assert_fullstack_matrix_agrees(&format!("figure seed={seed}"), &cfg);
    }
}

#[test]
fn fullstack_chaos_agrees_across_the_job_matrix() {
    for seed in [7, 4242] {
        let cfg = FullStackConfig::chaos(6, 0.10, seed);
        let reference = run_fullstack(&cfg, Executor::Reference);
        assert!(
            reference.drops > 0,
            "chaos seed={seed} must actually drop packets for the test to bite"
        );
        assert_fullstack_matrix_agrees(&format!("chaos seed={seed}"), &cfg);
    }
}

#[test]
fn fullstack_figure_events_all_carry_node_affinity() {
    // The census extension of the `at_node` audit: after a full figure
    // workload every scheduler event must have been attributed to a real
    // rank — nothing in the overflow slot, and every rank's shard fielded
    // work. An unattributed event would pin work to shard 0 regardless of
    // owner, silently serialising the parallel engine.
    let cfg = FullStackConfig::figure(6, 99);
    let (report, _world, sched) = run_fullstack_observed(&cfg, Executor::Reference, None);
    assert!(report.invariants_clean);
    let census = sched.node_event_counts();
    assert_eq!(
        census.len(),
        cfg.ranks as usize + 1,
        "counters for ranks 0..ranks plus the overflow slot"
    );
    let (per_rank, overflow) = census.split_at(cfg.ranks as usize);
    assert_eq!(
        overflow,
        &[0],
        "no full-stack event may target an out-of-range node"
    );
    for (rank, &count) in per_rank.iter().enumerate() {
        assert!(count > 0, "rank {rank} fielded no node-affine events");
    }
    assert_eq!(
        census.iter().sum::<u64>(),
        report.events,
        "every executed event must be node-affine (zero slipped through \
         the non-affine `at` path)"
    );
}

#[test]
fn distinct_seeds_produce_distinct_digests() {
    // A digest that ignored its inputs would pass every equality test;
    // prove it is sensitive to the simulated content.
    let a = run_sweep(&PdesWorkloadConfig::new(400), Some(2));
    let mut cfg = PdesWorkloadConfig::new(400);
    cfg.seed ^= 0xDEAD;
    let b = run_sweep(&cfg, Some(2));
    assert_ne!(a.digest, b.digest);
}
