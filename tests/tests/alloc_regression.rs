//! Data-plane allocation regression test.
//!
//! A counting global allocator wraps `System`; after a warm-up round has
//! populated every pool (WR freelists, CQ rings, poll scratch, hash-map
//! capacity), a steady-state 64 KiB partitioned send must perform zero
//! heap allocations end to end: post, wire delivery, completion dispatch,
//! and progress polling all run out of recycled storage.
//!
//! This file holds exactly one test: a sibling test allocating on another
//! thread while the window is open would fail it spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use partix_core::{AggregatorKind, PartixConfig, World};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PARTITIONS: u32 = 16;
const PART_BYTES: usize = 4096; // 16 x 4 KiB = one 64 KiB message per round

#[test]
fn steady_state_64k_send_is_allocation_free() {
    let world = World::instant(2, PartixConfig::with_aggregator(AggregatorKind::PLogGp));
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let total = PARTITIONS as usize * PART_BYTES;
    let sbuf = p0.alloc_buffer(total).unwrap();
    let rbuf = p1.alloc_buffer(total).unwrap();
    let send = p0.psend_init(&sbuf, PARTITIONS, PART_BYTES, 1, 0).unwrap();
    let recv = p1.precv_init(&rbuf, PARTITIONS, PART_BYTES, 0, 0).unwrap();

    let round = |tick: u8| {
        recv.start().unwrap();
        send.start().unwrap();
        for i in 0..PARTITIONS {
            sbuf.fill(
                i as usize * PART_BYTES,
                PART_BYTES,
                tick.wrapping_add(i as u8),
            )
            .unwrap();
            send.pready(i).unwrap();
        }
        send.wait().unwrap();
        recv.wait().unwrap();
    };

    // Warm-up: freelists, scratch buffers, and map capacity fill here.
    for tick in 0..4u8 {
        round(tick);
    }

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for tick in 4..12u8 {
        round(tick);
    }
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    // Verify the rounds actually moved data before judging the count.
    let last = 11u8;
    for i in 0..PARTITIONS {
        let got = rbuf.read_vec(i as usize * PART_BYTES, PART_BYTES).unwrap();
        assert!(
            got.iter().all(|&b| b == last.wrapping_add(i as u8)),
            "partition {i} holds stale bytes"
        );
    }
    assert_eq!(
        allocs, 0,
        "steady-state partitioned send must not touch the heap ({allocs} allocations leaked into the hot path)"
    );
}
