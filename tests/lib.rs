//! Shared helpers for the cross-crate system tests (the tests themselves
//! live in `tests/tests/`).

use partix_core::{MemoryRegion, PartixConfig, PrecvRequest, Proc, PsendRequest, World};

/// A matched send/receive pair over two ranks of a fresh instant world.
pub struct InstantPair {
    /// The world (kept alive for the requests).
    pub world: World,
    /// Sender process.
    pub p0: Proc,
    /// Receiver process.
    pub p1: Proc,
    /// Send request.
    pub send: PsendRequest,
    /// Receive request.
    pub recv: PrecvRequest,
    /// Sender buffer.
    pub sbuf: MemoryRegion,
    /// Receiver buffer.
    pub rbuf: MemoryRegion,
}

/// Build an instant-fabric pair with the given configuration and shape.
pub fn instant_pair(cfg: PartixConfig, partitions: u32, part_bytes: usize) -> InstantPair {
    let world = World::instant(2, cfg);
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let total = partitions as usize * part_bytes;
    let sbuf = p0.alloc_buffer(total).expect("send buffer");
    let rbuf = p1.alloc_buffer(total).expect("recv buffer");
    let send = p0
        .psend_init(&sbuf, partitions, part_bytes, 1, 0)
        .expect("psend_init");
    let recv = p1
        .precv_init(&rbuf, partitions, part_bytes, 0, 0)
        .expect("precv_init");
    InstantPair {
        world,
        p0,
        p1,
        send,
        recv,
        sbuf,
        rbuf,
    }
}

/// Deterministic pattern byte for (round, partition).
pub fn pattern(round: u64, partition: u32) -> u8 {
    (round as u8).wrapping_mul(31) ^ (partition as u8).wrapping_mul(7) ^ 0x5A
}
