//! The paper's headline application scenario (§V-D, Fig. 14): a Sweep3D
//! wavefront at 1024 simulated cores, comparing the three designs.
//!
//! ```text
//! cargo run --release -p partix-examples --bin sweep3d_app
//! ```
//!
//! Runs the 8×8-rank × 16-thread sweep on the virtual clock for each
//! aggregation strategy and prints the communication-time speedup over the
//! persistent (Open MPI + UCX analogue) baseline, for a sweep of message
//! sizes — a miniature of the paper's Fig. 14b.

use partix_core::{AggregatorKind, PartixConfig, SimDuration};
use partix_workloads::sweep::{run_sweep, SweepConfig};

fn main() {
    println!("Sweep3D at 8x8 ranks x 16 threads (1024 cores), 1 ms compute, 4% noise");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}  {:>8}  {:>8}",
        "message", "persistent", "ploggp", "timer", "plg_spd", "tmr_spd"
    );

    for msg in [64usize << 10, 256 << 10, 1 << 20, 4 << 20] {
        let comm = |kind: AggregatorKind| {
            let mut cfg = SweepConfig::paper_1024(PartixConfig::with_aggregator(kind), msg / 16);
            cfg.compute = SimDuration::from_millis(1);
            cfg.noise_frac = 0.04;
            cfg.warmup = 1;
            cfg.iters = 4;
            run_sweep(&cfg).mean_comm_ns
        };
        let persistent = comm(AggregatorKind::Persistent);
        let ploggp = comm(AggregatorKind::PLogGp);
        let timer = comm(AggregatorKind::TimerPLogGp);
        println!(
            "{:>10}  {:>10.1}us  {:>10.1}us  {:>10.1}us  {:>8.2}  {:>8.2}",
            if msg >= 1 << 20 {
                format!("{}MiB", msg >> 20)
            } else {
                format!("{}KiB", msg >> 10)
            },
            persistent / 1e3,
            ploggp / 1e3,
            timer / 1e3,
            persistent / ploggp,
            persistent / timer,
        );
    }
    println!("sweep3d_app OK (communication time only; compute critical path subtracted)");
}
