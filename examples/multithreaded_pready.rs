//! Multi-threaded `pready` with the timer-based PLogGP aggregator on real
//! OS threads — the paper's target scenario (§IV-D, Fig. 5).
//!
//! ```text
//! cargo run -p partix-examples --bin multithreaded_pready
//! ```
//!
//! Each of 32 worker threads computes for a few hundred microseconds, fills
//! its partition, and calls `pready`. One thread per round is an artificial
//! laggard (the single-thread-delay model). With the delta timer armed, the
//! early threads' partitions are flushed as contiguous runs while the
//! laggard is still computing, and the laggard ships only its own partition
//! when it arrives — watch the per-round work-request counts.

use std::time::{Duration, Instant};

use partix_core::{AggregatorKind, PartixConfig, SimDuration, World};

fn main() {
    let mut config = PartixConfig::with_aggregator(AggregatorKind::TimerPLogGp);
    // Flush anything that has arrived 2 ms after the first arrival.
    config.delta = SimDuration::from_millis(2);
    let world = World::instant(2, config);
    let sender = world.proc(0);
    let receiver = world.proc(1);

    let partitions = 32u32;
    let part_bytes = 2 << 10;
    let total = partitions as usize * part_bytes;
    let sbuf = sender.alloc_buffer(total).expect("send buffer");
    let rbuf = receiver.alloc_buffer(total).expect("recv buffer");
    let send = sender
        .psend_init(&sbuf, partitions, part_bytes, 1, 0)
        .expect("psend_init");
    let recv = receiver
        .precv_init(&rbuf, partitions, part_bytes, 0, 0)
        .expect("precv_init");
    println!(
        "plan: {} transport partitions, delta = {:?}",
        send.plan().unwrap().groups,
        send.plan().unwrap().timer_delta,
    );

    for round in 0..3u32 {
        recv.start().expect("recv start");
        send.start().expect("send start");
        let laggard = round % partitions;
        let wrs_before = send.total_wrs_posted();
        let t0 = Instant::now();

        std::thread::scope(|scope| {
            for t in 0..partitions {
                let send = &send;
                let sbuf = &sbuf;
                scope.spawn(move || {
                    // "Compute": a short, jittered busy period; the laggard
                    // stalls well past the delta.
                    let base = Duration::from_micros(200 + (t as u64 * 13) % 150);
                    let extra = if t == laggard {
                        Duration::from_millis(8)
                    } else {
                        Duration::ZERO
                    };
                    std::thread::sleep(base + extra);
                    sbuf.fill(t as usize * part_bytes, part_bytes, (round as u8) ^ t as u8)
                        .expect("fill");
                    send.pready(t).expect("pready");
                });
            }
            // Meanwhile, the receiver's main thread consumes partitions as
            // they land (receive-side early processing via parrived).
            let mut seen = 0u32;
            let deadline = Instant::now() + Duration::from_secs(10);
            while seen < partitions {
                for t in 0..partitions {
                    if recv.parrived(t).expect("parrived") {
                        // Already counted partitions stay true; count once.
                    }
                }
                seen = recv.arrived_count();
                if Instant::now() > deadline {
                    panic!("partitions did not arrive in time");
                }
                std::thread::yield_now();
            }
        });

        send.wait().expect("send wait");
        recv.wait().expect("recv wait");
        let wrs = send.total_wrs_posted() - wrs_before;
        println!(
            "round {round}: laggard was thread {laggard}; {wrs} work requests \
             ({} early-bird flush + laggard), {:.1} ms wall",
            wrs - 1,
            t0.elapsed().as_secs_f64() * 1e3,
        );
        for t in 0..partitions {
            let got = rbuf
                .read_vec(t as usize * part_bytes, part_bytes)
                .expect("read");
            assert!(got.iter().all(|b| *b == (round as u8) ^ t as u8));
        }
    }
    println!("multithreaded_pready OK");
}
