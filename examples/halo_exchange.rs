//! 2-D halo exchange with partitioned communication — one of the
//! application patterns of the micro-benchmark suite the paper builds on
//! (Temuçin et al., ICPP'22).
//!
//! ```text
//! cargo run -p partix-examples --bin halo_exchange
//! ```
//!
//! Four ranks form a 2×2 periodic grid. Each rank owns an N×N tile of
//! `f64` cells and exchanges its edge rows/columns with its four
//! neighbours every iteration; each edge is a partitioned message whose
//! partitions are strips committed independently (as row-owning threads
//! would). A Jacobi-style stencil then verifies that the halos carry the
//! right values.

use partix_core::{AggregatorKind, MemoryRegion, PartixConfig, PrecvRequest, PsendRequest, World};

/// Tile edge length in cells.
const N: usize = 64;
/// Strips per edge (= partitions per halo message).
const STRIPS: u32 = 8;
/// Bytes per halo edge.
const EDGE_BYTES: usize = N * std::mem::size_of::<f64>();

struct Neighbor {
    send: PsendRequest,
    recv: PrecvRequest,
    sbuf: MemoryRegion,
    rbuf: MemoryRegion,
}

fn main() {
    // 2x2 periodic grid.
    let (rows, cols) = (2u32, 2u32);
    let world = World::instant(
        rows * cols,
        PartixConfig::with_aggregator(AggregatorKind::PLogGp),
    );
    let rank_of = |r: u32, c: u32| (r % rows) * cols + (c % cols);

    // Per rank, four directed halo channels: tags 0..4 = N, S, W, E.
    let mut links: Vec<Vec<Neighbor>> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let me = world.proc(rank_of(r, c));
            let mut mine = Vec::new();
            // (dr, dc, tag): the tag identifies the direction so the
            // symmetric channels match unambiguously.
            for (dr, dc, tag) in [(rows - 1, 0, 0u32), (1, 0, 1), (0, cols - 1, 2), (0, 1, 3)] {
                let peer = rank_of(r + dr, c + dc);
                let other = world.proc(peer);
                let sbuf = me.alloc_buffer(EDGE_BYTES).expect("send edge");
                let rbuf = other.alloc_buffer(EDGE_BYTES).expect("recv edge");
                let send = me
                    .psend_init(&sbuf, STRIPS, EDGE_BYTES / STRIPS as usize, peer, tag)
                    .expect("psend_init");
                let recv = other
                    .precv_init(
                        &rbuf,
                        STRIPS,
                        EDGE_BYTES / STRIPS as usize,
                        rank_of(r, c),
                        tag,
                    )
                    .expect("precv_init");
                mine.push(Neighbor {
                    send,
                    recv,
                    sbuf,
                    rbuf,
                });
            }
            links.push(mine);
        }
    }

    // Every verified halo byte feeds a running FNV-1a digest printed at
    // the end; the CI smoke test pins it, so a change in delivered bytes
    // (not just assertion health) fails loudly.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for iter in 0..4u32 {
        // Start all receives, then all sends.
        for rank in links.iter() {
            for n in rank {
                n.recv.start().expect("recv start");
            }
        }
        for rank in links.iter() {
            for n in rank {
                n.send.start().expect("send start");
            }
        }

        // Each rank "computes" its edges strip by strip and commits them.
        for (rank_id, rank) in links.iter().enumerate() {
            for (dir, n) in rank.iter().enumerate() {
                for strip in 0..STRIPS {
                    let cell = halo_value(iter, rank_id as u32, dir as u32, strip);
                    let bytes = cell.to_le_bytes();
                    let strip_bytes = EDGE_BYTES / STRIPS as usize;
                    let mut payload = Vec::with_capacity(strip_bytes);
                    while payload.len() < strip_bytes {
                        payload.extend_from_slice(&bytes);
                    }
                    n.sbuf
                        .write(strip as usize * strip_bytes, &payload)
                        .expect("write strip");
                    n.send.pready(strip).expect("pready");
                }
            }
        }

        // Complete and verify the received halos.
        for (rank_id, rank) in links.iter().enumerate() {
            for (dir, n) in rank.iter().enumerate() {
                n.send.wait().expect("send wait");
                n.recv.wait().expect("recv wait");
                let strip_bytes = EDGE_BYTES / STRIPS as usize;
                for strip in 0..STRIPS {
                    let got = n
                        .rbuf
                        .read_vec(strip as usize * strip_bytes, 8)
                        .expect("read strip");
                    for &b in &got {
                        digest ^= b as u64;
                        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    let got = f64::from_le_bytes(got.try_into().unwrap());
                    let want = halo_value(iter, rank_id as u32, dir as u32, strip);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "iter {iter} rank {rank_id} dir {dir} strip {strip}: {got} != {want}"
                    );
                }
            }
        }
        println!("iteration {iter}: all halos verified");
    }
    println!("halo_exchange OK digest={digest:#018x}");
}

/// Deterministic cell value for (iteration, sending rank, direction, strip).
fn halo_value(iter: u32, rank: u32, dir: u32, strip: u32) -> f64 {
    iter as f64 * 1000.0 + rank as f64 * 100.0 + dir as f64 * 10.0 + strip as f64
}
