//! Quickstart: the full MPI Partitioned lifecycle on two in-process ranks.
//!
//! ```text
//! cargo run -p partix-examples --bin quickstart
//! ```
//!
//! Demonstrates the paper's API mapping end to end: `psend_init` /
//! `precv_init` (matched by rank + tag), `start`, per-partition `pready`,
//! receive-side `parrived`, and `wait`, over the instant (functional)
//! fabric. The PLogGP aggregator decides how many RDMA-write-with-immediate
//! work requests actually hit the wire.

use partix_core::{AggregatorKind, PartixConfig, World};

fn main() {
    // A two-rank world over the instant fabric (real byte movement, no
    // modelled timing).
    let world = World::instant(2, PartixConfig::with_aggregator(AggregatorKind::PLogGp));
    let sender = world.proc(0);
    let receiver = world.proc(1);

    // 16 partitions of 4 KiB each: one 64 KiB persistent buffer per side.
    let partitions = 16u32;
    let part_bytes = 4 << 10;
    let total = partitions as usize * part_bytes;
    let sbuf = sender.alloc_buffer(total).expect("register send buffer");
    let rbuf = receiver.alloc_buffer(total).expect("register recv buffer");

    // MPI_Psend_init / MPI_Precv_init: matching happens at init time on
    // (source, destination, tag) — no wildcards in partitioned
    // communication.
    let send = sender
        .psend_init(&sbuf, partitions, part_bytes, 1, /*tag=*/ 7)
        .expect("psend_init");
    let recv = receiver
        .precv_init(&rbuf, partitions, part_bytes, 0, 7)
        .expect("precv_init");

    println!(
        "channel plan: {} transport partition(s) over {} QP(s) for {} KiB",
        send.plan().unwrap().groups,
        send.plan().unwrap().qp_count,
        total >> 10,
    );

    // Three persistent rounds over the same buffers. Everything the
    // receiver observes feeds a running FNV-1a digest printed at the end:
    // the CI smoke test pins that digest, so any change in what actually
    // lands (not just whether the asserts pass) fails loudly.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..3u8 {
        recv.start().expect("recv start");
        send.start().expect("send start");

        // "Threads" fill their partition and mark it ready. Here the main
        // thread plays all of them, in a scrambled order to show order
        // independence.
        for i in (0..partitions).rev() {
            sbuf.fill(
                i as usize * part_bytes,
                part_bytes,
                round.wrapping_mul(17) ^ i as u8,
            )
            .expect("fill partition");
            send.pready(i).expect("pready");
        }

        // The receiver can watch individual partitions land...
        while !recv.parrived(partitions - 1).expect("parrived") {
            std::hint::spin_loop();
        }
        // ...and completes once all have.
        send.wait().expect("send wait");
        recv.wait().expect("recv wait");

        // Verify the data.
        for i in 0..partitions {
            let got = rbuf
                .read_vec(i as usize * part_bytes, part_bytes)
                .expect("read partition");
            assert!(
                got.iter().all(|b| *b == round.wrapping_mul(17) ^ i as u8),
                "partition {i} corrupted"
            );
            for &b in &got {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        println!(
            "round {round}: {} partitions delivered in {} work request(s) total",
            partitions,
            send.total_wrs_posted(),
        );
    }
    println!("quickstart OK digest={digest:#018x}");
}
