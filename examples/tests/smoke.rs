//! CI smoke tests for the runnable examples.
//!
//! Each test executes the example binary (cargo builds it first and hands
//! us the path via `CARGO_BIN_EXE_*`), requires exit code 0, and pins the
//! FNV-1a digest the example prints over every byte it verified: the
//! examples are deterministic end to end, so a digest change means the
//! runtime changed what actually lands in receive buffers — something a
//! bare exit-code check would miss.

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("example output is UTF-8")
}

fn final_line(stdout: &str) -> &str {
    stdout.lines().last().expect("example printed nothing")
}

#[test]
fn quickstart_exits_clean_with_pinned_digest() {
    let out = run(env!("CARGO_BIN_EXE_quickstart"));
    assert_eq!(
        final_line(&out),
        "quickstart OK digest=0x559bdca49774a325",
        "full output:\n{out}"
    );
}

#[test]
fn halo_exchange_exits_clean_with_pinned_digest() {
    let out = run(env!("CARGO_BIN_EXE_halo_exchange"));
    assert_eq!(
        final_line(&out),
        "halo_exchange OK digest=0x6578b1660d7d082a",
        "full output:\n{out}"
    );
}
