//! The paper's measure→model→decide loop, end to end: run Netgauge-style
//! micro-benchmarks on the simulated MPI path, fit the LogGP parameters by
//! regression, and print the aggregation policy the fitted PLogGP model
//! would choose (the paper's Table I methodology, §IV-C).
//!
//! ```text
//! cargo run --release -p partix-examples --bin netgauge_fit
//! ```

use partix_core::PartixConfig;
use partix_model::netgauge::assess;
use partix_model::{PLogGpModel, DEFAULT_DECISION_DELAY_NS};
use partix_workloads::netgauge_provider::SimNetgauge;

fn main() {
    println!("running Netgauge-style probes on the simulated MPI path...");
    let config = PartixConfig::default();
    let mut provider = SimNetgauge::new(config.clone());
    let assessment = assess(&mut provider);
    let p = assessment.params;

    println!("\nfitted LogGP parameters (MPI level):");
    println!("  L   = {:>10.1} ns   (one-way latency)", p.l);
    println!("  o_s = {:>10.1} ns   (send overhead)", p.o_s);
    println!("  o_r = {:>10.1} ns   (receive overhead)", p.o_r);
    println!("  g   = {:>10.1} ns   (per-message gap)", p.g);
    println!(
        "  G   = {:>10.4} ns/B (=> {:.2} GB/s)",
        p.big_g,
        1.0 / p.big_g
    );
    println!(
        "  fit quality: bandwidth R^2 = {:.4}, gap R^2 = {:.4}",
        assessment.g_fit_r2, assessment.gap_fit_r2
    );

    let fitted = PLogGpModel::new(p);
    let calibrated = PLogGpModel::niagara();
    println!("\naggregation decisions (32 user partitions, 4 ms decision delay):");
    println!(
        "{:>10}  {:>22}  {:>22}",
        "message", "fitted-model choice", "paper-calibrated choice"
    );
    let mut size = 64usize << 10;
    while size <= 512 << 20 {
        let f = fitted.optimal_transport_partitions(size, 32, DEFAULT_DECISION_DELAY_NS);
        let c = calibrated.optimal_transport_partitions(size, 32, DEFAULT_DECISION_DELAY_NS);
        let label = if size >= 1 << 20 {
            format!("{}MiB", size >> 20)
        } else {
            format!("{}KiB", size >> 10)
        };
        println!("{label:>10}  {f:>22}  {c:>22}");
        size <<= 2;
    }
    println!(
        "\nThe fitted model reflects the simulated fabric's actual per-message costs\n\
         (lower than the Niagara MPI stack's), so it aggregates less aggressively;\n\
         both policies share the Table-I structure: more transport partitions as\n\
         messages grow. netgauge_fit OK"
    );
}
