//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! range and tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::sample::select`, `Just`, `.prop_map`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the case index and the
//!   test's deterministic seed; re-running reproduces it exactly.
//! - **Deterministic inputs.** Cases derive from an FNV hash of the test
//!   name, so runs are bit-reproducible (set `PROPTEST_CASES` to widen).
//! - Default case count is 64 (upstream: 256) because most properties here
//!   drive whole discrete-event simulations per case.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Per-test deterministic driver. Public for macro use.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// New runner for the property named `name`.
    pub fn new(cfg: ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg.cases);
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter for [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Whole-domain strategy for `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>`.

    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy yielding `None` or `Some` of the inner strategy's values
    /// (upstream defaults to `Some` three times out of four).
    pub struct OptionStrategy<S>(S);

    /// `Option<T>` values built from `inner` (see [`OptionStrategy`]).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0..4usize) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy drawing uniformly from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection`, `prop::option`,
        //! `prop::sample`).
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Assert a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define deterministic property tests.
///
/// Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     /// doc
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(cfg, stringify!($name));
            for __case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)+
                let run = || { $body };
                run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 1u32..10,
            f in 0.5f64..1.5,
            v in prop::collection::vec(any::<u8>(), 2..6),
            pick in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pick % 10 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn tuple_map_strategies(p in (1u32..4, 0u64..100).prop_map(|(a, b)| (a as u64) + b)) {
            prop_assert!(p < 104);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRunner::new(ProptestConfig::default(), "t");
        let mut b = TestRunner::new(ProptestConfig::default(), "t");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.sample(a.rng()), s.sample(b.rng()));
        }
    }
}
