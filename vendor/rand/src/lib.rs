//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random()` / `random_range()`. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic across platforms and releases of this shim,
//! which is all the simulation's reproducibility contract requires (it never
//! promises the upstream `StdRng` byte stream).

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly samplable output types for [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

/// Types usable as [`RngExt::random_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`hi` exclusive).
    fn draw_range(rng: &mut rngs::StdRng, lo: Self, hi_excl: Self) -> Self;
    /// The successor value, for inclusive upper bounds. Saturating.
    fn successor(self) -> Self;
}

/// Extension methods on random generators (the `rand::Rng` analogue).
pub trait RngExt {
    /// Draw a uniformly random value.
    fn random<T: Standard>(&mut self) -> T;
    /// Draw uniformly from `range` (`a..b` or `a..=b`). Panics if empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>;
}

pub mod rngs {
    //! Concrete generators.

    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Next raw 64-bit output.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Next raw 32-bit output (upper half of a 64-bit draw).
        #[inline]
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = std::array::from_fn(|_| splitmix64(&mut sm));
            StdRng { s }
        }
    }
}

use rngs::StdRng;
use std::ops::Bound;

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            #[inline]
            fn draw_range(rng: &mut StdRng, lo: Self, hi_excl: Self) -> Self {
                assert!(lo < hi_excl, "empty random_range");
                let span = (hi_excl - lo) as u128;
                // Widening multiply keeps the draw unbiased enough for
                // simulation noise (error < 2^-64).
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn draw_range(rng: &mut StdRng, lo: Self, hi_excl: Self) -> Self {
        assert!(lo < hi_excl, "empty random_range");
        lo + f64::draw(rng) * (hi_excl - lo)
    }
    #[inline]
    fn successor(self) -> Self {
        self
    }
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.successor(),
            Bound::Unbounded => panic!("random_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.successor(),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("random_range requires an upper bound"),
        };
        T::draw_range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_draws_cover_types() {
        let mut r = StdRng::seed_from_u64(2);
        let _: u64 = r.random();
        let _: bool = r.random();
        let f: f64 = r.random();
        assert!((0.0..1.0).contains(&f));
    }
}
