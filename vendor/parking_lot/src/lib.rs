//! Offline stand-in for the `parking_lot` crate.
//!
//! The real crate is unavailable in this build environment (no registry
//! access), so this shim provides the subset of its API the workspace uses
//! — `Mutex::{new, lock, try_lock}` and `RwLock::{new, read, write}` — on
//! top of `std::sync`. Poisoning is transparently recovered, matching
//! parking_lot's "no poisoning" semantics.

use std::sync;

/// A mutex that never poisons: a panicked holder releases the lock cleanly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that never poisons.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
