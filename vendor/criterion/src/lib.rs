//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API surface the
//! workspace's benches use: `Criterion::bench_function`,
//! `Criterion::benchmark_group` (+ `sample_size`/`bench_function`/`finish`),
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`, and `black_box`.
//!
//! Supported CLI arguments (everything else cargo passes is ignored):
//!
//! - `--test` — run every benchmark body exactly once (smoke mode);
//! - a positional `FILTER` — only run benchmarks whose id contains it.
//!
//! Results are printed as `name  median ns/iter (min .. max)` and collected
//! on the [`Criterion`] value; callers can export them with
//! [`Criterion::results`] / [`Criterion::write_json`], or set `BENCH_JSON` to
//! a path to have `criterion_main!` write them automatically.

use std::time::Instant;

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id (`group/name` when run in a group).
    pub id: String,
    /// Median ns per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    mode: BenchMode,
    ns_per_iter: Vec<f64>,
}

enum BenchMode {
    /// Run the body once, unmeasured (`--test`).
    Smoke,
    /// Measure `samples` samples of `iters` iterations each.
    Measure { samples: usize },
}

impl Bencher {
    /// Time repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(f());
            }
            BenchMode::Measure { samples } => {
                // Calibrate: target ~20 ms per sample, capped at 1k iters.
                let t0 = Instant::now();
                black_box(f());
                let once = t0.elapsed().as_nanos().max(1) as f64;
                let iters = ((20e6 / once) as u64).clamp(1, 1_000);
                for _ in 0..samples {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let total = t0.elapsed().as_nanos() as f64;
                    self.ns_per_iter.push(total / iters as f64);
                }
            }
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_samples: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Build a harness from the process CLI arguments.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" | "-t" => c.test_mode = true,
                // Cargo/criterion flags with a value we deliberately ignore.
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if other.starts_with('-') => {}
                other => c.filter = Some(other.to_string()),
            }
        }
        c
    }

    fn run_one(&mut self, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: if self.test_mode {
                BenchMode::Smoke
            } else {
                BenchMode::Measure { samples }
            },
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
            return;
        }
        let mut v = b.ns_per_iter;
        if v.is_empty() {
            return;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let res = BenchResult {
            id: id.to_string(),
            median_ns: median,
            min_ns: v[0],
            max_ns: v[v.len() - 1],
            iters_per_sample: 0,
            samples: v.len(),
        };
        println!(
            "{:<48} {:>14.1} ns/iter  ({:.1} .. {:.1})",
            res.id, res.median_ns, res.min_ns, res.max_ns
        );
        self.results.push(res);
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(id.as_ref(), samples, &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            c: self,
            name: name.into(),
            samples,
        }
    }

    /// Results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Whether `--test` smoke mode is active.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Serialize results as a JSON array.
    pub fn results_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}, \"samples\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push(']');
        out
    }

    /// Write results as JSON to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.results_json())
    }

    /// End-of-run hook used by `criterion_main!`: honours `BENCH_JSON`.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                self.write_json(std::path::Path::new(&path))
                    .expect("write BENCH_JSON");
                eprintln!("wrote benchmark results to {path}");
            }
        }
    }
}

/// Scoped group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run a benchmark inside the group (id becomes `group/name`).
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let samples = self.samples;
        self.c.run_one(&full, samples, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns >= 0.0);
        let json = c.results_json();
        assert!(json.contains("\"id\": \"noop\""));
    }

    #[test]
    fn groups_namespace_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("x", |b| b.iter(|| black_box(2) * 2));
            g.finish();
        }
        assert_eq!(c.results()[0].id, "g/x");
        assert_eq!(c.results()[0].samples, 3);
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            filter: Some("match".into()),
            ..Criterion::default()
        };
        c.bench_function("other", |b| b.iter(|| ()));
        c.bench_function("match_this", |b| b.iter(|| ()));
        assert_eq!(c.results().len(), 1);
    }
}
